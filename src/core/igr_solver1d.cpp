#include "core/igr_solver1d.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "common/math.hpp"
#include "fv/rk3.hpp"

namespace igr::core {

namespace {
constexpr double kTiny = 1e-300;
}

IgrSolver1D::IgrSolver1D(int n, double x0, double x1, Options opt)
    : n_(n), x0_(x0), dx_((x1 - x0) / n), opt_(opt) {
  if (n < 8) throw std::invalid_argument("IgrSolver1D: need at least 8 cells");
  if (x1 <= x0) throw std::invalid_argument("IgrSolver1D: bad extent");
  alpha_ = (opt.alpha >= 0.0) ? opt.alpha : opt.alpha_factor * dx_ * dx_;
  const std::size_t sz = static_cast<std::size_t>(n) + 2 * ng_;
  for (auto* v : {&rho_, &mom_, &e_, &rho0_, &mom0_, &e0_, &rrho_, &rmom_,
                  &re_, &sigma_, &sigma_src_, &sigma_tmp_}) {
    v->assign(sz, 0.0);
  }
}

void IgrSolver1D::init(const PrimFn1D& prim) {
  const double gm1 = opt_.gamma - 1.0;
  for (int i = 0; i < n_; ++i) {
    const auto w = prim(x(i));
    const std::size_t idx = static_cast<std::size_t>(i + ng_);
    rho_[idx] = w.rho;
    mom_[idx] = w.rho * w.u;
    e_[idx] = (opt_.pressureless ? 0.0 : w.p / gm1) + 0.5 * w.rho * w.u * w.u;
  }
  std::fill(sigma_.begin(), sigma_.end(), 0.0);
  time_ = 0.0;
}

void IgrSolver1D::apply_bc(std::vector<double>& a, bool negate_odd) const {
  for (int g = 1; g <= ng_; ++g) {
    if (opt_.bc == Bc1D::kPeriodic) {
      a[static_cast<std::size_t>(ng_ - g)] =
          a[static_cast<std::size_t>(n_ + ng_ - g)];
      a[static_cast<std::size_t>(n_ + ng_ + g - 1)] =
          a[static_cast<std::size_t>(ng_ + g - 1)];
    } else {  // outflow: zero-gradient
      a[static_cast<std::size_t>(ng_ - g)] = a[ng_];
      a[static_cast<std::size_t>(n_ + ng_ + g - 1)] =
          a[static_cast<std::size_t>(n_ + ng_ - 1)];
    }
  }
  (void)negate_odd;
}

void IgrSolver1D::fill_ghosts() {
  apply_bc(rho_, false);
  apply_bc(mom_, false);
  apply_bc(e_, false);
}

void IgrSolver1D::solve_sigma() {
  if (alpha_ <= 0.0 || opt_.sigma_sweeps == 0) {
    std::fill(sigma_.begin(), sigma_.end(), 0.0);
    return;
  }
  const double inv_dx2 = 1.0 / (dx_ * dx_);
  // Source: alpha * (tr((grad u)^2) + tr^2(grad u)) = 2 alpha u_x^2 in 1-D.
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const double up = mom_[c + 1] / rho_[c + 1];
    const double um = mom_[c - 1] / rho_[c - 1];
    const double ux = (up - um) / (2.0 * dx_);
    sigma_src_[c] = 2.0 * alpha_ * ux * ux;
  }

  // Face densities are arithmetic means.  (The 3-D solver uses harmonic
  // means for a division-free hot loop; near-vacuum pressureless states are
  // gentler under arithmetic means, and 1-D cost is irrelevant.)
  for (int s = 0; s < opt_.sigma_sweeps; ++s) {
    apply_bc(sigma_, false);
    auto relax = [&](int i) {
      const std::size_t c = static_cast<std::size_t>(i + ng_);
      const double rp = 0.5 * (rho_[c] + rho_[c + 1]);
      const double rm = 0.5 * (rho_[c] + rho_[c - 1]);
      const double off =
          inv_dx2 * (sigma_[c + 1] / rp + sigma_[c - 1] / rm);
      const double diag =
          1.0 / rho_[c] + alpha_ * inv_dx2 * (1.0 / rp + 1.0 / rm);
      return (sigma_src_[c] + alpha_ * off) / diag;
    };
    if (opt_.gauss_seidel) {
      for (int i = 0; i < n_; ++i)
        sigma_[static_cast<std::size_t>(i + ng_)] = relax(i);
    } else {
      for (int i = 0; i < n_; ++i)
        sigma_tmp_[static_cast<std::size_t>(i + ng_)] = relax(i);
      std::swap(sigma_, sigma_tmp_);
    }
  }
  apply_bc(sigma_, false);
}

void IgrSolver1D::compute_rhs() {
  fill_ghosts();
  solve_sigma();

  const double gm1 = opt_.gamma - 1.0;
  const double inv_dx = 1.0 / dx_;

  // Face fluxes at i-1/2 for i in [0, n]; flux[f] separates cell f-1 and f.
  std::vector<std::array<double, 3>> flux(static_cast<std::size_t>(n_) + 1);

  for (int f = 0; f <= n_; ++f) {
    const int i = f - 1;  // face between cells i and i+1
    std::array<double, 6> sr{}, sm{}, se{}, ssig{};
    for (int m = 0; m < 6; ++m) {
      const std::size_t c = static_cast<std::size_t>(i - 2 + m + ng_);
      sr[static_cast<std::size_t>(m)] = rho_[c];
      sm[static_cast<std::size_t>(m)] = mom_[c];
      se[static_cast<std::size_t>(m)] = e_[c];
      ssig[static_cast<std::size_t>(m)] = sigma_[c];
    }
    auto fr = fv::reconstruct(opt_.recon, sr);
    auto fm = fv::reconstruct(opt_.recon, sm);
    auto fe = fv::reconstruct(opt_.recon, se);
    auto fs = fv::reconstruct(opt_.recon, ssig);

    // First-order fallback at non-physical reconstructed states (start-up
    // discontinuities before Sigma develops) — same safeguard as the 3-D
    // solver; conservation is unaffected.
    auto nonphysical = [&](double r, double m, double E) {
      if (!(r > 0.0)) return true;
      return !opt_.pressureless && !(E - 0.5 * m * m / r > 0.0);
    };
    if (nonphysical(fr.left, fm.left, fe.left) ||
        nonphysical(fr.right, fm.right, fe.right)) {
      fr = {sr[2], sr[3]};
      fm = {sm[2], sm[3]};
      fe = {se[2], se[3]};
      fs = {ssig[2], ssig[3]};
    }

    auto side = [&](double r, double m, double E, double sig,
                    std::array<double, 3>& out, double& smax) {
      r = std::max(r, 1e-12);
      const double u = m / r;
      const double p =
          opt_.pressureless ? 0.0 : std::max(gm1 * (E - 0.5 * m * u), 0.0);
      const double pt = p + sig;
      out = {m, m * u + pt, (E + pt) * u};
      const double c2 = opt_.pressureless
                            ? std::max(sig, 0.0) / r
                            : opt_.gamma * std::max(pt, kTiny) / r;
      smax = std::abs(u) + std::sqrt(std::max(c2, 0.0));
    };

    std::array<double, 3> fl{}, frr{};
    double sl = 0, srr = 0;
    side(fr.left, fm.left, fe.left, fs.left, fl, sl);
    side(fr.right, fm.right, fe.right, fs.right, frr, srr);
    const double smax = std::max(sl, srr);

    const std::array<double, 3> ul{fr.left, fm.left, fe.left};
    const std::array<double, 3> ur{fr.right, fm.right, fe.right};
    for (int c = 0; c < 3; ++c) {
      flux[static_cast<std::size_t>(f)][static_cast<std::size_t>(c)] =
          0.5 * (fl[static_cast<std::size_t>(c)] +
                 frr[static_cast<std::size_t>(c)]) -
          0.5 * smax * (ur[static_cast<std::size_t>(c)] -
                        ul[static_cast<std::size_t>(c)]);
    }
  }

  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const std::size_t f = static_cast<std::size_t>(i);
    rrho_[c] = (flux[f][0] - flux[f + 1][0]) * inv_dx;
    rmom_[c] = (flux[f][1] - flux[f + 1][1]) * inv_dx;
    re_[c] = (flux[f][2] - flux[f + 1][2]) * inv_dx;
  }
}

double IgrSolver1D::max_wave_speed() const {
  // The entropic pressure augments the effective acoustic speed (eqs. 7-8:
  // p -> p + Sigma), so the CFL bound must include it — material at large
  // alpha, negligible at alpha ~ dx^2 with O(1) gradients.
  const double gm1 = opt_.gamma - 1.0;
  double smax = kTiny;
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const double u = mom_[c] / rho_[c];
    const double sig = std::max(sigma_[c], 0.0);
    double cs = 0.0;
    if (!opt_.pressureless) {
      const double p = std::max(gm1 * (e_[c] - 0.5 * mom_[c] * u), kTiny);
      cs = std::sqrt(opt_.gamma * (p + sig) / rho_[c]);
    } else {
      cs = std::sqrt(sig / rho_[c]);
    }
    smax = std::max(smax, std::abs(u) + cs);
  }
  return smax;
}

double IgrSolver1D::step() {
  const double dt = opt_.cfl * dx_ / max_wave_speed();
  step_fixed(dt);
  return dt;
}

void IgrSolver1D::step_fixed(double dt) {
  rho0_ = rho_;
  mom0_ = mom_;
  e0_ = e_;
  // Tracer velocities are advanced with the pre-step field (explicit Euler in
  // the flow map; dt is CFL-small so this resolves the Fig. 3 trajectories).
  std::vector<double> tracer_vel(tracers_.size());
  for (std::size_t t = 0; t < tracers_.size(); ++t)
    tracer_vel[t] = velocity_at(tracers_[t]);

  for (const auto& st : fv::kRk3Stages) {
    compute_rhs();
    for (int i = 0; i < n_; ++i) {
      const std::size_t c = static_cast<std::size_t>(i + ng_);
      rho_[c] = st.a * rho0_[c] + st.b * (rho_[c] + dt * rrho_[c]);
      mom_[c] = st.a * mom0_[c] + st.b * (mom_[c] + dt * rmom_[c]);
      e_[c] = st.a * e0_[c] + st.b * (e_[c] + dt * re_[c]);
    }
  }

  // Heun correction with the post-step field.
  for (std::size_t t = 0; t < tracers_.size(); ++t) {
    const double v1 = velocity_at(tracers_[t] + dt * tracer_vel[t]);
    tracers_[t] += 0.5 * dt * (tracer_vel[t] + v1);
  }
  time_ += dt;
}

void IgrSolver1D::advance_to(double t_end) {
  while (time_ < t_end - 1e-14) {
    double dt = opt_.cfl * dx_ / max_wave_speed();
    dt = std::min(dt, t_end - time_);
    step_fixed(dt);
  }
}

std::vector<double> IgrSolver1D::rho() const {
  return {rho_.begin() + ng_, rho_.begin() + ng_ + n_};
}

std::vector<double> IgrSolver1D::velocity() const {
  std::vector<double> v(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    v[static_cast<std::size_t>(i)] = mom_[c] / rho_[c];
  }
  return v;
}

std::vector<double> IgrSolver1D::pressure() const {
  const double gm1 = opt_.gamma - 1.0;
  std::vector<double> v(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    const double u = mom_[c] / rho_[c];
    v[static_cast<std::size_t>(i)] =
        opt_.pressureless ? 0.0 : gm1 * (e_[c] - 0.5 * mom_[c] * u);
  }
  return v;
}

std::vector<double> IgrSolver1D::sigma_profile() const {
  return {sigma_.begin() + ng_, sigma_.begin() + ng_ + n_};
}

std::array<double, 3> IgrSolver1D::conserved_totals() const {
  std::array<double, 3> tot{0.0, 0.0, 0.0};
  for (int i = 0; i < n_; ++i) {
    const std::size_t c = static_cast<std::size_t>(i + ng_);
    tot[0] += rho_[c] * dx_;
    tot[1] += mom_[c] * dx_;
    tot[2] += e_[c] * dx_;
  }
  return tot;
}

int IgrSolver1D::add_tracer(double xp) {
  tracers_.push_back(xp);
  return static_cast<int>(tracers_.size()) - 1;
}

double IgrSolver1D::velocity_at(double xp) const {
  // Linear interpolation between cell centers; clamp to the domain.
  if (!std::isfinite(xp)) return 0.0;
  const double s = (xp - x0_) / dx_ - 0.5;
  const double sc = std::clamp(s, 0.0, static_cast<double>(n_ - 1));
  const int i0 = std::min(static_cast<int>(sc), n_ - 2);
  const double w = sc - i0;
  const std::size_t c0 = static_cast<std::size_t>(i0 + ng_);
  const double u0 = mom_[c0] / rho_[c0];
  const double u1 = mom_[c0 + 1] / rho_[c0 + 1];
  return (1.0 - w) * u0 + w * u1;
}

}  // namespace igr::core
