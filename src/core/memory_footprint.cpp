#include "core/memory_footprint.hpp"

namespace igr::core {

double FootprintModel::reals_per_cell() const {
  double r = 0;
  for (const auto& it : items) r += it.reals_per_cell;
  return r;
}

double FootprintModel::bytes_per_cell() const {
  return reals_per_cell() * static_cast<double>(bytes_per_real);
}

FootprintModel igr_footprint(std::size_t bytes_per_real, bool jacobi) {
  FootprintModel m;
  m.scheme = "IGR (fused kernel)";
  m.bytes_per_real = bytes_per_real;
  m.items = {
      {"conservative state (rho, rho*u, E)", 5},
      {"Runge-Kutta sub-step register", 5},
      {"right-hand side", 5},
      {"entropic pressure Sigma", 1},
      {"Sigma-equation source", 1},
  };
  if (jacobi) m.items.push_back({"Sigma Jacobi double-buffer", 1});
  return m;
}

FootprintModel weno_footprint(std::size_t bytes_per_real) {
  FootprintModel m;
  m.scheme = "WENO5+HLLC (array-based)";
  m.bytes_per_real = bytes_per_real;
  // Buffer inventory of a conventional optimized implementation (MFC-style):
  // all reconstruction/flux intermediates are stored as full fields per
  // coordinate direction rather than as thread-local temporaries.
  m.items = {
      {"conservative state", 5},
      {"Runge-Kutta registers (2)", 10},
      {"primitive variables", 5},
      {"right-hand side", 5},
      {"reconstructed L/R states, 3 dirs", 30},
      {"face fluxes, 3 dirs", 15},
      {"WENO smoothness/workspace (3 stencils, L/R)", 30},
      {"velocity-gradient workspace", 6},
  };
  return m;
}

double footprint_ratio(const FootprintModel& baseline,
                       const FootprintModel& igr) {
  return baseline.bytes_per_cell() / igr.bytes_per_cell();
}

double device_resident_fraction(bool host_rk, bool host_igr_tmp) {
  double device = 17.0;
  if (host_rk) device -= 5.0;       // RK register to host -> 12/17
  if (host_igr_tmp) device -= 2.0;  // Sigma + source to host -> 10/17
  return device / 17.0;
}

std::size_t max_cells_per_device(std::size_t device_bytes,
                                 const FootprintModel& model,
                                 double device_fraction) {
  const double bytes_per_cell = model.bytes_per_cell() * device_fraction;
  if (bytes_per_cell <= 0.0) return 0;
  return static_cast<std::size_t>(static_cast<double>(device_bytes) /
                                  bytes_per_cell);
}

}  // namespace igr::core
