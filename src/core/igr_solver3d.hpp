#pragma once
/// \file igr_solver3d.hpp
/// The paper's primary contribution: a 3-D compressible Navier–Stokes solver
/// regularized information-geometrically (eqs. 6–9) — 5th-order linear
/// reconstruction, Lax–Friedrichs fluxes, SSP-RK3, and a warm-started
/// ≤5-sweep elliptic solve for the entropic pressure per RHS evaluation.
///
/// Storage matches §5.2's accounting: 2 copies of the 5 conservative
/// variables (state + RK register), 5 RHS arrays, Sigma, and the Sigma
/// source — 17N storage values (+1N Jacobi double-buffer when enabled).
///
/// Note on kernel organization: the paper fuses reconstruction, both flux
/// families, and the Sigma source into one GPU kernel with thread-local
/// temporaries, interleaving the elliptic solve with the x-direction sweep
/// (Algorithm 1).  On CPU we realize the same memory discipline with
/// per-line scratch buffers, and solve the Sigma equation once per RHS
/// before the dimensional sweeps — algebraically the same scheme (the
/// x-direction additionally sees the freshly solved Sigma).

#include <array>
#include <functional>

#include "common/config.hpp"
#include "common/field3.hpp"
#include "common/precision.hpp"
#include "common/timer.hpp"
#include "core/sigma_solver.hpp"
#include "eos/ideal_gas.hpp"
#include "fv/bc.hpp"
#include "fv/reconstruct.hpp"
#include "fv/rk3.hpp"
#include "mesh/grid.hpp"

namespace igr::core {

/// Initial condition: primitive state as a function of cell-center position.
using PrimFn = std::function<common::Prim<double>(double, double, double)>;

/// Half-open box of interior cells, [lo, hi) per axis.  The flux sweeps can
/// be restricted to a region so distributed drivers may split a block into
/// an interior (no ghost reads — computable while a halo exchange is in
/// flight) and the complementary boundary shell.  Cell values are bitwise
/// independent of how the block is partitioned into regions.
struct CellRegion {
  std::array<int, 3> lo{};
  std::array<int, 3> hi{};
  [[nodiscard]] bool empty() const {
    return hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2];
  }
};

template <class Policy>
class IgrSolver3D {
 public:
  using S = typename Policy::storage_t;
  using C = typename Policy::compute_t;

  IgrSolver3D(const mesh::Grid& grid, const common::SolverConfig& cfg,
              fv::BcSpec bc,
              fv::ReconScheme recon = fv::ReconScheme::kFifth);

  /// Set the state from a primitive-variable initial condition.
  void init(const PrimFn& prim);

  /// Advance one step at the CFL-limited dt; returns the dt taken.
  double step();
  /// Advance one step with a caller-chosen dt (used by convergence tests).
  void step_fixed(double dt);

  /// RHS of the semi-discrete system for state `q` (ghosts are filled here).
  /// Public so tests can probe spatial accuracy and conservation directly.
  void compute_rhs(common::StateField3<S>& q, common::StateField3<S>& rhs);

  [[nodiscard]] common::StateField3<S>& state() { return q_; }
  [[nodiscard]] const common::StateField3<S>& state() const { return q_; }
  [[nodiscard]] const common::Field3<S>& sigma() const { return sigma_; }
  [[nodiscard]] const mesh::Grid& grid() const { return grid_; }
  [[nodiscard]] const eos::IdealGas& eos() const { return eos_; }
  [[nodiscard]] const common::SolverConfig& config() const { return cfg_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double time() const { return time_; }

  /// Bytes allocated in persistent field storage (the §5.4 footprint metric).
  [[nodiscard]] std::size_t memory_bytes() const;
  /// Stored values per interior grid point (17 for Gauss–Seidel, 18 Jacobi).
  [[nodiscard]] double storage_per_cell() const;

  [[nodiscard]] common::GrindTimer& grind_timer() { return grind_; }

  /// Conserved totals (mass, momentum, energy) over the interior, in double.
  [[nodiscard]] common::Cons<double> conserved_totals() const;

  // --- Piecewise API for distributed drivers (sim::DistributedIgr) ---
  // These expose the phases of compute_rhs so a driver can interleave halo
  // exchanges in lockstep across ranks.  Single-rank use composes them in
  // exactly the order compute_rhs does.

  /// Physical-boundary ghost fill only (no Sigma work, no fluxes).
  void apply_domain_bc(common::StateField3<S>& q);
  /// Sigma-equation source from the current ghosts of `q`.
  void build_sigma_source(common::StateField3<S>& q) {
    compute_sigma_source(q);
  }
  /// One relaxation pass with the current Sigma ghosts.
  void sigma_sweep(common::StateField3<S>& q);
  /// Ghost fill of Sigma at physical boundaries (distributed drivers then
  /// overwrite interior-face ghosts with exchanged halos).
  void fill_sigma_boundary();
  /// Zero `rhs` and accumulate the three dimensional flux sweeps (requires
  /// valid ghosts on `q` and on Sigma).  The reconstruction scheme is
  /// resolved to a compile-time instantiation here, once per call — the only
  /// runtime dispatch on the flux path.  (The zeroing is folded into the
  /// dir==0 sweep's write-back; rhs ghost cells are never touched.)
  ///
  /// Preconditions: `q` and `rhs` must have this solver's block shape and
  /// ghost depth (asserted).  With viscosity enabled *and* the Sigma solve
  /// active, the viscous path reads the reciprocal-density cache refreshed
  /// by build_sigma_source — call that on the same `q` first (compute_rhs
  /// and the distributed driver both do); with the Sigma solve disabled the
  /// cache is refreshed here.
  void compute_fluxes(common::StateField3<S>& q, common::StateField3<S>& rhs);
  /// Interior part of compute_fluxes with respect to one axis: only cells
  /// at least one ghost depth (3) away from the two block faces of `axis`,
  /// which therefore read no ghost *plane along that axis* of `q` or Sigma
  /// — safe to run while a halo exchange of exactly that axis is still in
  /// flight (ghosts of the other axes must already be valid; the axis-x,y
  /// exchanges complete before the overlapped axis-z one is posted).
  /// Empty (a no-op) when the block is thinner than 2x the margin.  Shares
  /// compute_fluxes' preconditions; when the viscous path must refresh the
  /// reciprocal-density cache (Sigma solve inactive), this call does it —
  /// always pair it with compute_fluxes_boundary afterwards.
  void compute_fluxes_interior(common::StateField3<S>& q,
                               common::StateField3<S>& rhs, int axis);
  /// The complementary two boundary slabs of `axis` (needs valid ghosts on
  /// `q` and Sigma).  interior + boundary update each interior cell exactly
  /// once and are together bitwise identical to one compute_fluxes call.
  void compute_fluxes_boundary(common::StateField3<S>& q,
                               common::StateField3<S>& rhs, int axis);
  /// The interior region used by the split above ([3, n-3) along `axis`,
  /// clamped for thin blocks; full extent on the other axes).
  [[nodiscard]] CellRegion interior_flux_region(int axis) const;
  /// Reference flux path: identical sweep body, but the reconstruction
  /// scheme is re-dispatched through the runtime switch per face — the
  /// pre-optimization structure.  Kept for the dispatch-equivalence tests
  /// (bitwise-equal results at FP64) and as a bisection aid; not a hot path.
  void compute_fluxes_runtime_dispatch(common::StateField3<S>& q,
                                       common::StateField3<S>& rhs);
  /// RK convex combination: stage = a*q^n + b*(stage + dt*rhs).
  void rk_update(const fv::Rk3Stage& st, double dt);

  [[nodiscard]] common::StateField3<S>& stage_field() { return qstage_; }
  [[nodiscard]] common::StateField3<S>& rhs_field() { return rhs_; }
  [[nodiscard]] common::Field3<S>& sigma_field() { return sigma_; }
  /// Commit the stage register as the new state and advance time.
  void finish_step(double dt);
  /// Copy state into the stage register (start of a step).
  void begin_step();

 private:
  /// Reciprocal density over the full ghosted extent of `q` into inv_rho_:
  /// one division per point, consumed multiplication-only by the Sigma
  /// source, the relaxation sweeps, and the viscous flux path.
  void refresh_inv_rho(common::StateField3<S>& q);
  void compute_sigma_source(common::StateField3<S>& q);
  /// One dimensional sweep, templated on the sweep axis and on the
  /// reconstruction operator (a fv::ReconFixed<R> for the hot path,
  /// fv::ReconRuntime for the reference path): axis selection, pressure
  /// placement, and the reconstruction stencil all resolve at compile time,
  /// leaving no per-face dispatch.  `overwrite` folds the RHS zeroing into
  /// the first sweep's write-back.
  /// All sweeps honor a cell region: only cells inside `reg` are written,
  /// and only the stencil extent of `reg` is read.
  template <int Dir, class ReconOp>
  void flux_sweep(common::StateField3<S>& q, common::StateField3<S>& rhs,
                  ReconOp recon, bool overwrite, const CellRegion& reg);
  template <class ReconOp>
  void flux_sweep_all(common::StateField3<S>& q, common::StateField3<S>& rhs,
                      ReconOp recon, const CellRegion& reg);
  /// Dispatch + sweep over one region (refresh_inv_rho handling included
  /// when `prepare` is set — exactly once per RHS evaluation).
  void compute_fluxes_region(common::StateField3<S>& q,
                             common::StateField3<S>& rhs,
                             const CellRegion& reg, bool prepare);
  /// The once-per-RHS flux precondition: the viscous path reads the
  /// persistent reciprocal-density field, which nobody refreshed this RHS
  /// when the Sigma solve is disabled.
  void prepare_flux_pass(common::StateField3<S>& q);
  [[nodiscard]] CellRegion full_region() const {
    return {{0, 0, 0}, {grid_.nx(), grid_.ny(), grid_.nz()}};
  }

  mesh::Grid grid_;
  common::SolverConfig cfg_;
  fv::BcSpec bc_;
  fv::ReconScheme recon_;
  eos::IdealGas eos_;
  double alpha_;
  double time_ = 0.0;
  SigmaBc sigma_bc_ = SigmaBc::kPeriodic;

  common::StateField3<S> q_;       // current state
  common::StateField3<S> qstage_;  // RK register
  common::StateField3<S> rhs_;
  common::Field3<S> sigma_;
  common::Field3<S> sigma_src_;
  common::Field3<S> sigma_scratch_;  // Jacobi only (size 0 for Gauss–Seidel)
  /// Reciprocal density (CPU optimization: the Sigma sweeps and source run
  /// division-free; the paper's fused GPU kernel recomputes reciprocals in
  /// registers instead, keeping its storage at 17N).
  common::Field3<S> inv_rho_;

  common::GrindTimer grind_;
};

}  // namespace igr::core
