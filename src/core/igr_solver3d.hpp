#pragma once
/// \file igr_solver3d.hpp
/// The paper's primary contribution: a 3-D compressible Navier–Stokes solver
/// regularized information-geometrically (eqs. 6–9) — 5th-order linear
/// reconstruction, Lax–Friedrichs fluxes, SSP-RK3, and a warm-started
/// ≤5-sweep elliptic solve for the entropic pressure per RHS evaluation.
///
/// Storage matches §5.2's accounting: 2 copies of the 5 conservative
/// variables (state + RK register), 5 RHS arrays, Sigma, and the Sigma
/// source — 17N storage values (+1N Jacobi double-buffer when enabled).
///
/// Note on kernel organization: the paper fuses reconstruction, both flux
/// families, and the Sigma source into one GPU kernel with thread-local
/// temporaries, interleaving the elliptic solve with the x-direction sweep
/// (Algorithm 1).  The CPU port realizes the same traversal discipline with
/// a fused, k-plane-streaming RHS pipeline (SolverConfig::fused_rhs, the
/// default): per RK stage, a rolling window of planes flows once through
/// the Sigma-source build, the ≤5 warm-started relaxation sweeps (pipelined
/// across planes as a red–black/Jacobi wavefront where the Sigma boundary
/// handling permits), and the three flux sweeps streamed in k-blocks, with
/// the SSP-RK3 convex update trailing the flux front and the CFL reduction
/// for the next step's dt folded into the final stage's write-back.  Every
/// slot of the pipeline reads exactly the values the phased schedule would
/// show it, so results — state *and* dt — are bitwise-identical to the
/// phased reference path kept behind `fused_rhs = false`.

#include <array>
#include <cstdint>
#include <functional>

#include "common/config.hpp"
#include "common/field3.hpp"
#include "common/precision.hpp"
#include "common/timer.hpp"
#include "core/sigma_solver.hpp"
#include "eos/ideal_gas.hpp"
#include "fv/bc.hpp"
#include "fv/cfl.hpp"
#include "fv/reconstruct.hpp"
#include "fv/rk3.hpp"
#include "mesh/grid.hpp"

namespace igr::core {

/// Initial condition: primitive state as a function of cell-center position.
using PrimFn = std::function<common::Prim<double>(double, double, double)>;

/// Half-open box of interior cells, [lo, hi) per axis.  The flux sweeps can
/// be restricted to a region so distributed drivers may split a block into
/// an interior (no ghost reads — computable while a halo exchange is in
/// flight) and the complementary boundary shell.  Cell values are bitwise
/// independent of how the block is partitioned into regions.
struct CellRegion {
  std::array<int, 3> lo{};
  std::array<int, 3> hi{};
  [[nodiscard]] bool empty() const {
    return hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2];
  }
};

/// Per-face Sigma ghost kinds implied by the state BCs: Sigma wraps across
/// periodic state faces and clamps (zero-gradient) across everything else.
/// Shared by IgrSolver3D's constructor and the distributed driver's
/// physical-face Sigma fill so both derive identical specs.
[[nodiscard]] SigmaBcSpec sigma_bc_from(const fv::BcSpec& bc);

template <class Policy>
class IgrSolver3D {
 public:
  using S = typename Policy::storage_t;
  using C = typename Policy::compute_t;

  IgrSolver3D(const mesh::Grid& grid, const common::SolverConfig& cfg,
              fv::BcSpec bc,
              fv::ReconScheme recon = fv::ReconScheme::kFifth);

  /// Set the state from a primitive-variable initial condition.
  void init(const PrimFn& prim);

  /// Advance one step at the CFL-limited dt; returns the dt taken.
  double step();
  /// Advance one step with a caller-chosen dt (used by convergence tests).
  void step_fixed(double dt);

  /// RHS of the semi-discrete system for state `q` (ghosts are filled here).
  /// Public so tests can probe spatial accuracy and conservation directly.
  /// This is the *phased* schedule — one full-grid pass per phase — kept as
  /// the bitwise reference for the fused pipeline regardless of
  /// cfg.fused_rhs (step_fixed is what dispatches on the toggle).
  void compute_rhs(common::StateField3<S>& q, common::StateField3<S>& rhs);

  /// The fused plane-streaming evaluation of the same RHS: Sigma source →
  /// pipelined relaxation wavefront → k-block-streamed flux sweeps, one
  /// rolling pass over memory.  Bitwise-identical to compute_rhs (the RK/dt
  /// folds live in the fused step path, not here).
  void compute_rhs_fused(common::StateField3<S>& q,
                         common::StateField3<S>& rhs);

  [[nodiscard]] common::StateField3<S>& state() { return q_; }
  [[nodiscard]] const common::StateField3<S>& state() const { return q_; }
  [[nodiscard]] const common::Field3<S>& sigma() const { return sigma_; }
  [[nodiscard]] const mesh::Grid& grid() const { return grid_; }
  [[nodiscard]] const eos::IdealGas& eos() const { return eos_; }
  [[nodiscard]] const common::SolverConfig& config() const { return cfg_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double time() const { return time_; }
  /// Restore the simulated-time clock (checkpoint restart).  Callers that
  /// also replace state()/sigma_field() must invalidate_dt_cache().
  void set_time(double t) { time_ = t; }

  /// Bytes allocated in persistent field storage (the §5.4 footprint metric).
  [[nodiscard]] std::size_t memory_bytes() const;
  /// Stored values per interior grid point (17 for Gauss–Seidel, 18 Jacobi).
  [[nodiscard]] double storage_per_cell() const;

  [[nodiscard]] common::GrindTimer& grind_timer() { return grind_; }
  /// Per-phase wall-time breakdown (populated when cfg.phase_timing is on).
  [[nodiscard]] common::PhaseProfile& phase_profile() { return profile_; }
  [[nodiscard]] const common::PhaseProfile& phase_profile() const {
    return profile_;
  }
  /// Total Sigma relaxation sweeps executed so far (always maintained — one
  /// integer add per sweep; the fused pipeline credits its logical sweeps in
  /// one batch).  Telemetry reads deltas of this per step.
  [[nodiscard]] std::uint64_t sigma_sweeps_done() const {
    return sigma_sweeps_done_;
  }

  /// The fused step caches the next step's CFL dt (its reduction is folded
  /// into the final RK stage's traversal).  Mutating state()/sigma_field()
  /// externally between steps invalidates that fold — call this afterwards
  /// so the next step() rescans instead of using the stale cache.
  void invalidate_dt_cache() { next_dt_valid_ = false; }

  /// Conserved totals (mass, momentum, energy) over the interior, in double.
  [[nodiscard]] common::Cons<double> conserved_totals() const;

  // --- Piecewise API for distributed drivers (sim::DistributedIgr) ---
  // These expose the phases of compute_rhs so a driver can interleave halo
  // exchanges in lockstep across ranks.  Single-rank use composes them in
  // exactly the order compute_rhs does.

  /// Physical-boundary ghost fill only (no Sigma work, no fluxes).
  void apply_domain_bc(common::StateField3<S>& q);
  /// Sigma-equation source from the current ghosts of `q`.
  void build_sigma_source(common::StateField3<S>& q) {
    compute_sigma_source(q);
  }
  /// Interior part of build_sigma_source with respect to the z axis: the
  /// reciprocal-density refresh over interior planes plus the source over
  /// planes [1, nz-1).  Reads no z ghost plane of `q`, so it is safe to run
  /// while the z halo exchange of `q` is still in flight (x/y ghosts must
  /// already be valid).  Pair with build_sigma_source_boundary; together
  /// they are bitwise one build_sigma_source call (per-point maps over
  /// disjoint plane sets).
  void build_sigma_source_interior(common::StateField3<S>& q);
  /// The z-boundary complement: ghost-plane reciprocal-density refresh and
  /// the source at planes 0 and nz-1 (needs valid z ghosts of `q`).
  void build_sigma_source_boundary(common::StateField3<S>& q);
  /// One relaxation pass with the current Sigma ghosts.
  void sigma_sweep(common::StateField3<S>& q);
  /// Ghost fill of Sigma at physical boundaries (distributed drivers then
  /// overwrite interior-face ghosts with exchanged halos).
  void fill_sigma_boundary();
  /// Zero `rhs` and accumulate the three dimensional flux sweeps (requires
  /// valid ghosts on `q` and on Sigma).  The reconstruction scheme is
  /// resolved to a compile-time instantiation here, once per call — the only
  /// runtime dispatch on the flux path.  (The zeroing is folded into the
  /// dir==0 sweep's write-back; rhs ghost cells are never touched.)
  ///
  /// Preconditions: `q` and `rhs` must have this solver's block shape and
  /// ghost depth (asserted).  With viscosity enabled *and* the Sigma solve
  /// active, the viscous path reads the reciprocal-density cache refreshed
  /// by build_sigma_source — call that on the same `q` first (compute_rhs
  /// and the distributed driver both do); with the Sigma solve disabled the
  /// cache is refreshed here.
  void compute_fluxes(common::StateField3<S>& q, common::StateField3<S>& rhs);
  /// Interior part of compute_fluxes with respect to one axis: only cells
  /// at least one ghost depth (3) away from the two block faces of `axis`,
  /// which therefore read no ghost *plane along that axis* of `q` or Sigma
  /// — safe to run while a halo exchange of exactly that axis is still in
  /// flight (ghosts of the other axes must already be valid; the axis-x,y
  /// exchanges complete before the overlapped axis-z one is posted).
  /// Empty (a no-op) when the block is thinner than 2x the margin.  Shares
  /// compute_fluxes' preconditions; when the viscous path must refresh the
  /// reciprocal-density cache (Sigma solve inactive), this call does it —
  /// always pair it with compute_fluxes_boundary afterwards.
  void compute_fluxes_interior(common::StateField3<S>& q,
                               common::StateField3<S>& rhs, int axis);
  /// The complementary two boundary slabs of `axis` (needs valid ghosts on
  /// `q` and Sigma).  interior + boundary update each interior cell exactly
  /// once and are together bitwise identical to one compute_fluxes call.
  void compute_fluxes_boundary(common::StateField3<S>& q,
                               common::StateField3<S>& rhs, int axis);
  /// The interior region used by the split above ([3, n-3) along `axis`,
  /// clamped for thin blocks; full extent on the other axes).
  [[nodiscard]] CellRegion interior_flux_region(int axis) const;
  /// Reference flux path: identical sweep body, but the reconstruction
  /// scheme is re-dispatched through the runtime switch per face — the
  /// pre-optimization structure.  Kept for the dispatch-equivalence tests
  /// (bitwise-equal results at FP64) and as a bisection aid; not a hot path.
  void compute_fluxes_runtime_dispatch(common::StateField3<S>& q,
                                       common::StateField3<S>& rhs);
  /// RK convex combination: stage = a*q^n + b*(stage + dt*rhs).
  void rk_update(const fv::Rk3Stage& st, double dt);

  [[nodiscard]] common::StateField3<S>& stage_field() { return qstage_; }
  [[nodiscard]] common::StateField3<S>& rhs_field() { return rhs_; }
  [[nodiscard]] common::Field3<S>& sigma_field() { return sigma_; }
  /// Commit the stage register as the new state and advance time.
  void finish_step(double dt);
  /// Copy state into the stage register (start of a step).
  void begin_step();

 private:
  /// Reciprocal density over ghosted planes k ∈ [k0, k1) of `q` into
  /// inv_rho_: one division per point, consumed multiplication-only by the
  /// Sigma source, the relaxation sweeps, and the viscous flux path.
  void refresh_inv_rho_planes(common::StateField3<S>& q, int k0, int k1);
  void refresh_inv_rho(common::StateField3<S>& q) {
    refresh_inv_rho_planes(q, -q.ng(), grid_.nz() + q.ng());
  }
  /// Sigma source over interior planes [k0, k1) (needs inv_rho through
  /// planes k0-1..k1).  For the converting policy with batched lanes, each
  /// thread streams its plane range through a rolling 3-plane ring of
  /// velocity rows, so every momentum/inv_rho row is converted once per
  /// visit instead of once per stencil position (five times).
  void compute_sigma_source_planes(common::StateField3<S>& q, int k0, int k1);
  /// Full-field source build: inv_rho refresh interleaved with the source
  /// in k-chunks so the freshly written reciprocal planes are still
  /// cache-resident when the source consumes them.  (Values are traversal-
  /// order-independent; this is bitwise the old two-pass build.)
  void compute_sigma_source(common::StateField3<S>& q);
  /// One dimensional sweep, templated on the sweep axis and on the
  /// reconstruction operator (a fv::ReconFixed<R> for the hot path,
  /// fv::ReconRuntime for the reference path): axis selection, pressure
  /// placement, and the reconstruction stencil all resolve at compile time,
  /// leaving no per-face dispatch.  `overwrite` folds the RHS zeroing into
  /// the first sweep's write-back.
  /// All sweeps honor a cell region: only cells inside `reg` are written,
  /// and only the stencil extent of `reg` is read.
  template <int Dir, class ReconOp>
  void flux_sweep(common::StateField3<S>& q, common::StateField3<S>& rhs,
                  ReconOp recon, bool overwrite, const CellRegion& reg);
  template <class ReconOp>
  void flux_sweep_all(common::StateField3<S>& q, common::StateField3<S>& rhs,
                      ReconOp recon, const CellRegion& reg);
  /// Row-streaming form of one sweep: faces evaluated a unit-stride x-row
  /// at a time straight from the fields (no line gather/scatter), with
  /// rolling stencil/prim/flux rows for the transverse directions.
  /// Bitwise-identical to flux_sweep; the hot path for every region
  /// variant, while the runtime-dispatch reference keeps the line kernel.
  template <int Dir, class ReconOp>
  void flux_sweep_stream(common::StateField3<S>& q,
                         common::StateField3<S>& rhs, ReconOp recon,
                         bool overwrite, const CellRegion& reg);
  template <class ReconOp>
  void flux_stream_all(common::StateField3<S>& q, common::StateField3<S>& rhs,
                       ReconOp recon, const CellRegion& reg);
  /// Dispatch + sweep over one region (refresh_inv_rho handling included
  /// when `prepare` is set — exactly once per RHS evaluation).
  void compute_fluxes_region(common::StateField3<S>& q,
                             common::StateField3<S>& rhs,
                             const CellRegion& reg, bool prepare);
  /// The once-per-RHS flux precondition: the viscous path reads the
  /// persistent reciprocal-density field, which nobody refreshed this RHS
  /// when the Sigma solve is disabled.
  void prepare_flux_pass(common::StateField3<S>& q);
  [[nodiscard]] CellRegion full_region() const {
    return {{0, 0, 0}, {grid_.nx(), grid_.ny(), grid_.nz()}};
  }

  // --- Fused plane-streaming pipeline (cfg.fused_rhs) ---
  /// k-block thickness of the streamed flux stage.  At least the ghost
  /// depth: the trailing RK update of block b-1 must not touch planes the
  /// z-flux stencil of block b still reads.
  [[nodiscard]] int flux_block() const;
  /// Ghost fill + Sigma solve of one RHS evaluation, plane-pipelined where
  /// the Sigma boundary handling permits (see the .cpp for the wavefront
  /// schedule and its dependency argument).
  void fused_sigma_phase(common::StateField3<S>& q);
  /// Source + sweeps + boundary fill as one skewed plane wavefront
  /// (Neumann Sigma ghosts only — a periodic wrap would need far-boundary
  /// post-sweep values before the stream reaches them).
  void fused_sigma_pipeline(common::StateField3<S>& q);
  /// Streamed flux blocks with the RK update (and, on the final stage, the
  /// CFL reduction) trailing one block behind the flux front.
  void fused_flux_rk(common::StateField3<S>& q, common::StateField3<S>& rhs,
                     const fv::Rk3Stage& st, double dt, bool first_stage,
                     bool accumulate_dt);
  /// RK update restricted to planes [k0, k1).
  void rk_update_planes(const fv::Rk3Stage& st, double dt, int k0, int k1);
  /// First-stage RK update reading q_ directly: qstage = q + dt * rhs.
  /// Bitwise the phased `0*qn + 1*(qstage + dt*rhs)` with qstage a fresh
  /// copy of q (±0*x + y == y for every y the copy construction can
  /// produce), which lets the fused step skip begin_step's 5N copy.
  void rk_stage1_planes(double dt, int k0, int k1);
  void step_fixed_fused(double dt);

  mesh::Grid grid_;
  common::SolverConfig cfg_;
  fv::BcSpec bc_;
  fv::ReconScheme recon_;
  eos::IdealGas eos_;
  double alpha_;
  double time_ = 0.0;
  SigmaBcSpec sigma_bc_{};  // derived per face from bc_ (sigma_bc_from)

  common::StateField3<S> q_;       // current state
  common::StateField3<S> qstage_;  // RK register
  common::StateField3<S> rhs_;
  common::Field3<S> sigma_;
  common::Field3<S> sigma_src_;
  common::Field3<S> sigma_scratch_;  // Jacobi only (size 0 for Gauss–Seidel)
  /// Reciprocal density (CPU optimization: the Sigma sweeps and source run
  /// division-free; the paper's fused GPU kernel recomputes reciprocals in
  /// registers instead, keeping its storage at 17N).
  common::Field3<S> inv_rho_;

  common::GrindTimer grind_;
  common::PhaseProfile profile_;
  std::uint64_t sigma_sweeps_done_ = 0;

  /// Next-step CFL cache: the fused final RK stage accumulates the CFL
  /// extrema over the freshly written state and warm Sigma — the same
  /// values the phased step() scans at the top of the next step — so
  /// step() skips the dedicated 6N pass.
  fv::CflRates dt_rates_{};
  double next_dt_ = 0.0;
  bool next_dt_valid_ = false;
};

}  // namespace igr::core
