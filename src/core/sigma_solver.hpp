#pragma once
/// \file sigma_solver.hpp
/// Solver for the entropic-pressure equation, paper eq. (9):
///
///   alpha * (tr((grad u)^2) + tr^2(grad u)) = Sigma/rho - alpha * div(grad(Sigma)/rho)
///
/// Because alpha ∝ dx^2, the discrete system is uniformly well-conditioned
/// and grid-point-local; warm-started Jacobi or Gauss–Seidel converges in
/// ≤ 5 sweeps per flux computation (§5.2).  The elliptic operator uses the
/// paper's 7-point stencil with face densities taken as arithmetic means.

#include <array>

#include "common/field3.hpp"
#include "common/precision.hpp"

namespace igr::core {

/// Boundary handling for Sigma's ghost layers during sweeps/reconstruction.
enum class SigmaBc { kPeriodic, kNeumann };

/// Fill ghost layers of `sigma` (wrap for periodic, clamp for Neumann).
/// `layers` limits the fill depth: relaxation sweeps only consume one ghost
/// layer, while the final reconstruction needs all of them.
template <class S>
void fill_sigma_ghosts(common::Field3<S>& sigma, SigmaBc bc, int layers = -1);

/// Per-axis, side-maskable variant for distributed drivers (physical faces
/// only; interior faces come from halo exchange).
template <class S>
void fill_sigma_ghosts_axis(common::Field3<S>& sigma, SigmaBc bc, int axis,
                            std::array<bool, 2> sides, int layers = -1);

/// Relaxation sweeps for eq. (9).
///
/// \param sigma    In: warm start (previous Sigma).  Out: updated solution.
/// \param scratch  Jacobi double-buffer; unused for Gauss–Seidel (the paper:
///                 "An additional copy of Sigma is required if Jacobi sweeps
///                 are used").
/// \param src      Right-hand side alpha*(tr((grad u)^2) + tr^2(grad u)).
/// \param inv_rho  Reciprocal density with valid ghost layers.
/// \tparam Policy  Precision policy; fields hold storage_t, arithmetic is
///                 performed at compute_t.
template <class Policy>
void sigma_solve(common::Field3<typename Policy::storage_t>& sigma,
                 common::Field3<typename Policy::storage_t>& scratch,
                 const common::Field3<typename Policy::storage_t>& src,
                 const common::Field3<typename Policy::storage_t>& inv_rho,
                 typename Policy::compute_t alpha,
                 typename Policy::compute_t dx,
                 typename Policy::compute_t dy,
                 typename Policy::compute_t dz,
                 int sweeps, bool gauss_seidel, SigmaBc bc);

/// A single relaxation pass using the *current* ghost values of `sigma`
/// (no internal ghost fill).  Distributed drivers call this in lockstep with
/// halo exchanges; `sigma_solve` composes it with `fill_sigma_ghosts`.
/// Jacobi passes write through `scratch` and swap.
///
/// `inv_rho` is the reciprocal density (with ghosts); face coefficients are
/// arithmetic means of 1/rho (harmonic-mean density), which keeps the sweep
/// free of divisions — the CPU analogue of the fused GPU kernel's
/// reciprocal arithmetic.
template <class Policy>
void sigma_sweep_once(common::Field3<typename Policy::storage_t>& sigma,
                      common::Field3<typename Policy::storage_t>& scratch,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz, bool gauss_seidel);

/// Max-norm residual of the discrete eq. (9); used by tests and adaptive
/// sweep-count studies.
template <class Policy>
double sigma_residual(const common::Field3<typename Policy::storage_t>& sigma,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz);

}  // namespace igr::core
