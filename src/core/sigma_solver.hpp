#pragma once
/// \file sigma_solver.hpp
/// Solver for the entropic-pressure equation, paper eq. (9):
///
///   alpha * (tr((grad u)^2) + tr^2(grad u)) = Sigma/rho - alpha * div(grad(Sigma)/rho)
///
/// Because alpha ∝ dx^2, the discrete system is uniformly well-conditioned
/// and grid-point-local; warm-started Jacobi or Gauss–Seidel converges in
/// ≤ 5 sweeps per flux computation (§5.2).  The elliptic operator uses the
/// paper's 7-point stencil.  Its face coefficient is the arithmetic mean of
/// the two cells' *reciprocal* densities, 0.5*(1/rho_i + 1/rho_j) — i.e.
/// 1/rho_face with rho_face the harmonic mean of the cell densities.  That
/// is the intended discretization (not an arithmetic-mean face density):
/// it is division-free given the precomputed 1/rho field and keeps the
/// operator symmetric positive definite for rho > 0.

#include <array>

#include "common/exec.hpp"
#include "common/field3.hpp"
#include "common/precision.hpp"

namespace igr::core {

/// Boundary handling for Sigma's ghost layers during sweeps/reconstruction.
enum class SigmaBc { kPeriodic, kNeumann };

/// Per-face Sigma ghost kinds, ordered like mesh::Face (xlo, xhi, ylo, yhi,
/// zlo, zhi; face index = 2*axis + side).  Mixed-BC cases wrap Sigma across
/// their periodic state faces and clamp (zero-gradient) everywhere else —
/// the per-face refinement of the historical one-global-SigmaBc scheme.
/// Implicitly constructible from a single SigmaBc so uniform-BC call sites
/// (and the existing test suite) read unchanged.
struct SigmaBcSpec {
  std::array<SigmaBc, 6> face{};

  SigmaBcSpec() : SigmaBcSpec(SigmaBc::kPeriodic) {}
  // NOLINTNEXTLINE(google-explicit-constructor): uniform broadcast is the
  // intended shorthand (`fill_sigma_ghosts(f, SigmaBc::kNeumann)`).
  SigmaBcSpec(SigmaBc uniform) { face.fill(uniform); }

  [[nodiscard]] SigmaBc side(int axis, int s) const {
    return face[static_cast<std::size_t>(2 * axis + s)];
  }
  [[nodiscard]] bool all(SigmaBc b) const {
    for (const SigmaBc f : face)
      if (f != b) return false;
    return true;
  }
  friend bool operator==(const SigmaBcSpec& a, const SigmaBcSpec& b) {
    return a.face == b.face;
  }
};

/// Relaxation orderings for the eq. (9) sweeps.
enum class SweepKind {
  /// Double-buffered simultaneous update.  Embarrassingly parallel and
  /// decomposition-exact (rank count cannot change the bits), at the cost
  /// of one extra N-sized buffer and a slightly slower contraction rate.
  kJacobi,
  /// In-place lexicographic Gauss–Seidel: the textbook serial ordering.
  /// Kept as the reference the parallel ordering is validated against.
  kGaussSeidelLex,
  /// In-place two-color (red–black) Gauss–Seidel: each half-pass updates
  /// one parity of (i+j+k) and is dependency-free, so it parallelizes
  /// across k-planes and pipelines within a row.  Same fixed point as the
  /// lexicographic ordering.  The default Gauss–Seidel flavor.
  kRedBlack,
};

/// Fill ghost layers of `sigma` (wrap for periodic, clamp for Neumann).
/// `layers` limits the fill depth: relaxation sweeps only consume one ghost
/// layer, while the final reconstruction needs all of them.
template <class S>
void fill_sigma_ghosts(common::Field3<S>& sigma, SigmaBcSpec bc,
                       int layers = -1);

/// Per-axis, side-maskable variant for distributed drivers (physical faces
/// only; interior faces come from halo exchange).
template <class S>
void fill_sigma_ghosts_axis(common::Field3<S>& sigma, SigmaBcSpec bc,
                            int axis, std::array<bool, 2> sides,
                            int layers = -1);

// --- Plane-streaming building blocks (the fused RHS pipeline) ---
// A full sweep (ghost fill + both red–black colors, or one Jacobi pass)
// decomposes into per-plane slots whose reads only ever see the values the
// phased schedule would show them, so a k-skewed wavefront of these calls is
// bitwise-identical to sigma_sweep_once.  See IgrSolver3D's fused pipeline
// for the slot schedule and its dependency argument.

/// x/y ghost-rim fill of interior planes k ∈ [k0, k1) only — the per-plane
/// restriction of fill_sigma_ghosts' axis-0 then axis-1 passes (corner cells
/// match: the axis-1 fill reads the axis-0 columns written just before).
template <class S>
void fill_sigma_rim(common::Field3<S>& sigma, SigmaBcSpec bc, int k0,
                    int k1, int layers = -1);

/// z ghost-plane fill of one side (0 = low, 1 = high): whole-plane copies
/// over the full x/y-extended extent, exactly the axis-2 pass of
/// fill_sigma_ghosts restricted to one face.  The source plane's rim must
/// already hold the values the phased fill would copy.
template <class S>
void fill_sigma_zghosts(common::Field3<S>& sigma, SigmaBcSpec bc, int side,
                        int layers = -1);

/// One red–black half-pass updating parity (i+j+k) ≡ `color` (mod 2),
/// restricted to planes k ∈ [k0, k1), in place.  Reads only the opposite
/// parity (planes k0-1..k1) plus src/inv_rho, so the caller may schedule
/// planes in any order that respects the sweep's cross-plane dependencies.
/// No k-parity phasing is needed here (unlike the full-field batched pass):
/// the caller serializes plane slots, so concurrent row gathers never span
/// a plane another thread is writing.
template <class Policy>
void sigma_relax_planes(common::Field3<typename Policy::storage_t>& sigma,
                        const common::Field3<typename Policy::storage_t>& src,
                        const common::Field3<typename Policy::storage_t>& inv_rho,
                        typename Policy::compute_t alpha,
                        typename Policy::compute_t dx,
                        typename Policy::compute_t dy,
                        typename Policy::compute_t dz, int color, int k0,
                        int k1, bool batch = true,
                        const common::ExecSpace& exec = {});

/// One Jacobi pass restricted to planes k ∈ [k0, k1): reads `in` (planes
/// k0-1..k1 and the rim ghosts of [k0,k1)), writes `out`.  The caller owns
/// the double-buffer bookkeeping (sigma_sweep_once swaps whole fields; a
/// pipelined caller alternates buffers per sweep and swaps once at the end).
template <class Policy>
void sigma_jacobi_planes(common::Field3<typename Policy::storage_t>& out,
                         const common::Field3<typename Policy::storage_t>& in,
                         const common::Field3<typename Policy::storage_t>& src,
                         const common::Field3<typename Policy::storage_t>& inv_rho,
                         typename Policy::compute_t alpha,
                         typename Policy::compute_t dx,
                         typename Policy::compute_t dy,
                         typename Policy::compute_t dz, int k0, int k1,
                         bool batch = true,
                         const common::ExecSpace& exec = {});

/// Relaxation sweeps for eq. (9).
///
/// \param sigma    In: warm start (previous Sigma).  Out: updated solution.
/// \param scratch  Jacobi double-buffer; unused for Gauss–Seidel (the paper:
///                 "An additional copy of Sigma is required if Jacobi sweeps
///                 are used").
/// \param src      Right-hand side alpha*(tr((grad u)^2) + tr^2(grad u)).
/// \param inv_rho  Reciprocal density with valid ghost layers.
/// \tparam Policy  Precision policy; fields hold storage_t, arithmetic is
///                 performed at compute_t.
template <class Policy>
void sigma_solve(common::Field3<typename Policy::storage_t>& sigma,
                 common::Field3<typename Policy::storage_t>& scratch,
                 const common::Field3<typename Policy::storage_t>& src,
                 const common::Field3<typename Policy::storage_t>& inv_rho,
                 typename Policy::compute_t alpha,
                 typename Policy::compute_t dx,
                 typename Policy::compute_t dy,
                 typename Policy::compute_t dz,
                 int sweeps, SweepKind kind, SigmaBcSpec bc, bool batch = true,
                 const common::ExecSpace& exec = {});

/// Back-compat flavor selector: `gauss_seidel` picks the parallel red–black
/// ordering (the production Gauss–Seidel), false picks Jacobi.
template <class Policy>
void sigma_solve(common::Field3<typename Policy::storage_t>& sigma,
                 common::Field3<typename Policy::storage_t>& scratch,
                 const common::Field3<typename Policy::storage_t>& src,
                 const common::Field3<typename Policy::storage_t>& inv_rho,
                 typename Policy::compute_t alpha,
                 typename Policy::compute_t dx,
                 typename Policy::compute_t dy,
                 typename Policy::compute_t dz,
                 int sweeps, bool gauss_seidel, SigmaBcSpec bc);

/// A single relaxation pass using the *current* ghost values of `sigma`
/// (no internal ghost fill).  Distributed drivers call this in lockstep with
/// halo exchanges; `sigma_solve` composes it with `fill_sigma_ghosts`.
/// Jacobi passes write through `scratch` and swap.
///
/// `inv_rho` is the reciprocal density (with ghosts); face coefficients are
/// arithmetic means of 1/rho (equivalently: 1/rho_face with a harmonic-mean
/// face density), which keeps the stencil free of divisions — the CPU
/// analogue of the fused GPU kernel's reciprocal arithmetic.  The only
/// division left is the diagonal solve, one per cell.
///
/// For the converting (FP16/32) policy, `batch` routes the red–black and
/// Jacobi passes through per-row float scratch lines filled by the batched
/// conversion lanes, with the current plane's sigma/inv_rho rows streamed
/// through a rolling 3-row ring (the PR 4 velocity-row-ring pattern) so
/// adjacent (j, k) visits reuse the converted rows they share instead of
/// re-converting them per stencil position — bitwise-identical to the
/// per-element path (`batch = false`, kept as the reference).  Identity-
/// storage policies ignore `batch`, and the lexicographic ordering is
/// always per-element (its loop-carried dependence is the point of keeping
/// it).
template <class Policy>
void sigma_sweep_once(common::Field3<typename Policy::storage_t>& sigma,
                      common::Field3<typename Policy::storage_t>& scratch,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz, SweepKind kind,
                      bool batch = true, const common::ExecSpace& exec = {});

/// Back-compat flavor selector: `gauss_seidel` picks red–black, else Jacobi.
template <class Policy>
void sigma_sweep_once(common::Field3<typename Policy::storage_t>& sigma,
                      common::Field3<typename Policy::storage_t>& scratch,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz, bool gauss_seidel);

/// Max-norm residual of the discrete eq. (9); used by tests and adaptive
/// sweep-count studies.
template <class Policy>
double sigma_residual(const common::Field3<typename Policy::storage_t>& sigma,
                      const common::Field3<typename Policy::storage_t>& src,
                      const common::Field3<typename Policy::storage_t>& inv_rho,
                      typename Policy::compute_t alpha,
                      typename Policy::compute_t dx,
                      typename Policy::compute_t dy,
                      typename Policy::compute_t dz);

}  // namespace igr::core
