/// \file fig7_strong_scaling.cpp
/// Reproduces paper Fig. 7: strong scaling of IGR (FP16/32, unified
/// memory) on all three systems from an 8-node base case to the full
/// systems.  Paper anchors: ~90/90/86% efficiency at a 32x device
/// increase; 44% (El Capitan), 44% (Frontier), 80% (Alps) at full system;
/// an 8-node problem accelerated ~500x end to end.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "perf/scaling_model.hpp"

int main() {
  using namespace igr;
  std::printf("igrflow :: Fig. 7 reproduction (strong scaling)\n");

  struct Case {
    perf::Platform p;
    double cells_per_node;  // of the 8-node base problem
  };
  const Case cases[] = {
      {perf::el_capitan(), 4.0 * std::pow(1380.0, 3)},
      {perf::frontier(), 10.5e9},
      {perf::alps(), 4.0 * std::pow(1611.0, 3)},
  };

  for (const auto& c : cases) {
    const auto& p = c.p;
    perf::ScalingModel m(p, perf::Scheme::kIgr, perf::Precision::kFp16x32,
                         perf::MemMode::kUnified);
    const int base_nodes = 8;
    const int base_dev = base_nodes * p.devices_per_node;
    const double total = base_nodes * c.cells_per_node;

    std::vector<int> device_counts;
    for (int nodes = base_nodes; nodes < p.full_system_nodes; nodes *= 2)
      device_counts.push_back(nodes * p.devices_per_node);
    device_counts.push_back(p.full_system_devices());

    const auto pts = m.strong_scaling(total, device_counts);

    bench::print_header(p.name + " (" + p.device + "), 8-node base, " +
                        "FP16/32 unified");
    std::printf("  %8s %10s %12s %12s %12s\n", "nodes", "devices", "speedup",
                "ideal", "efficiency");
    for (const auto& pt : pts) {
      const int nodes = pt.devices / p.devices_per_node;
      const double ideal = static_cast<double>(pt.devices) / base_dev;
      std::printf("  %8d %10d %12.1f %12.1f %11.1f%%%s\n", nodes, pt.devices,
                  pt.speedup, ideal, 100.0 * pt.efficiency,
                  pt.devices == p.full_system_devices() ? "  <- full system"
                                                        : "");
    }
    const auto& last = pts.back();
    std::printf("  full-system: %.0fx speedup at %.0f%% efficiency "
                "(paper: %s)\n",
                last.speedup, 100.0 * last.efficiency,
                p.name == "Alps" ? "80%" : "44%");
  }

  std::printf(
      "\nPaper §7.2: executing an 8-node computation on the full system "
      "cuts time\nto solution by a factor of about 500; the model lands in "
      "the same range.\n");
  return 0;
}
