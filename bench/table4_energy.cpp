/// \file table4_energy.cpp
/// Reproduces paper Table 4: energy per grid cell per time step (uJ) for
/// the baseline vs IGR on El Capitan, Frontier, and Alps.
///
/// The paper's measurement is P_avg x t_grind from device power counters
/// (§6.3).  We reproduce the mechanism with the PowerModel's per-scheme
/// device powers (implied by the paper's own Table 3 / Table 4 pairs) and
/// then cross-check the relative claim with grind times measured locally
/// against a nominal CPU package power.

#include <cstdio>

#include "bench_util.hpp"
#include "perf/platform.hpp"
#include "power/power_model.hpp"

int main() {
  using namespace igr;
  using power::PowerModel;

  std::printf("igrflow :: Table 4 reproduction (energy-to-solution)\n");

  bench::print_header(
      "Table 4 (modeled devices): energy uJ per grid cell per time step");
  std::printf("%-12s %14s %14s %14s %14s\n", "Energy (uJ)", "Baseline",
              "IGR", "Improvement", "Paper");
  for (const auto& p : perf::all_platforms()) {
    const double eb = PowerModel::paper_energy_uJ(p, perf::Scheme::kBaselineWeno);
    const double ei = PowerModel::paper_energy_uJ(p, perf::Scheme::kIgr);
    std::printf("%-12s %14.3f %14.3f %13.2fx %10.2fx\n", p.name.c_str(), eb,
                ei, eb / ei, PowerModel::improvement_factor(p));
  }
  std::printf(
      "\nHeadline: %.2fx energy improvement on Frontier (paper: 5.38x).\n",
      PowerModel::improvement_factor(perf::frontier()));

  bench::print_header("Implied average device power draw (P = E / t, FP64)");
  std::printf("%-12s %12s %18s %14s\n", "Platform", "Device", "Baseline [W]",
              "IGR [W]");
  for (const auto& p : perf::all_platforms()) {
    std::printf("%-12s %12s %18.0f %14.0f\n", p.name.c_str(),
                p.device.c_str(),
                PowerModel::device_power_W(p, perf::Scheme::kBaselineWeno),
                PowerModel::device_power_W(p, perf::Scheme::kIgr));
  }
  std::printf(
      "\nNote: on Alps the WENO scheme draws more power than IGR, which the\n"
      "paper credits for energy savings beyond the grind-time speedup (§7.3).\n");

  bench::print_header(
      "Local cross-check: measured CPU grind times x nominal package power");
  const int n = 28, warm = 1, steps = 2;
  const double base64 = bench::measure_grind_ns<common::Fp64>(
      app::SchemeKind::kBaselineWeno, n, warm, steps);
  const double igr64 = bench::measure_grind_ns<common::Fp64>(
      app::SchemeKind::kIgr, n, warm, steps);
  const double igr32 = bench::measure_grind_ns<common::Fp32>(
      app::SchemeKind::kIgr, n, warm, steps);
  constexpr double kCpuPowerW = 65.0;  // nominal desktop package power
  auto uj = [&](double grind_ns) { return kCpuPowerW * grind_ns * 1e-3; };
  std::printf("%-26s %14s %16s\n", "Scheme (this machine)", "grind [ns]",
              "energy [uJ/cell]");
  std::printf("%-26s %14.1f %16.3f\n", "Baseline WENO+HLLC FP64", base64,
              uj(base64));
  std::printf("%-26s %14.1f %16.3f\n", "IGR FP64", igr64, uj(igr64));
  std::printf("%-26s %14.1f %16.3f\n", "IGR FP32", igr32, uj(igr32));
  std::printf(
      "\nAt fixed power the energy ratio equals the grind ratio: %.2fx here\n"
      "(paper: 4.1-5.4x across machines, with scheme-dependent power on "
      "top).\n",
      base64 / igr64);
  return 0;
}
