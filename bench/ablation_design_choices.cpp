/// \file ablation_design_choices.cpp
/// Ablation study over the design choices DESIGN.md calls out:
///   (a) Sigma sweep count — the paper's "≤5 warm-started sweeps" (§5.2);
///   (b) Jacobi vs Gauss–Seidel relaxation (+1N storage for Jacobi);
///   (c) reconstruction order — the 5th-order choice vs 3rd/1st;
///   (d) regularization strength alpha_factor — accuracy vs shock width.
/// Each knob is varied in isolation on fixed validation problems; the
/// quality metric is L1 density error against the exact Riemann solution,
/// and cost is the measured grind time where it is the point.

#include <cmath>
#include <cstdio>

#include "app/jet_config.hpp"
#include "bench_util.hpp"
#include "core/igr_solver1d.hpp"
#include "fv/exact_riemann.hpp"

namespace {

using namespace igr;
using core::IgrSolver1D;
using core::Prim1;

auto sod_ic() {
  return [](double x) {
    Prim1 w;
    if (x < 0.5) {
      w.rho = 1.0;
      w.p = 1.0;
    } else {
      w.rho = 0.125;
      w.p = 0.1;
    }
    return w;
  };
}

double sod_l1(const IgrSolver1D::Options& opt, int n = 400) {
  IgrSolver1D s(n, 0.0, 1.0, opt);
  s.init(sod_ic());
  s.advance_to(0.2);
  fv::ExactRiemann ex(fv::sod_left(), fv::sod_right(), opt.gamma);
  const auto ref = ex.sample_profile(n, 0.0, 1.0, 0.5, 0.2);
  const auto rho = s.rho();
  double l1 = 0;
  for (int i = 0; i < n; ++i)
    l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                   ref[static_cast<std::size_t>(i)].rho) /
          n;
  return l1;
}

void ablate_sweeps() {
  bench::print_header("(a) Sigma sweep count (warm-started Gauss-Seidel)");
  std::printf("%10s %16s %20s\n", "sweeps", "Sod L1 error",
              "3-D grind [ns/cell]");
  IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  for (int sweeps : {1, 2, 3, 5, 10, 20}) {
    opt.sigma_sweeps = sweeps;
    // 3-D cost at the same sweep count (jet workload, FP64).
    const auto jet = app::single_engine();
    typename app::Simulation<common::Fp64>::Params p;
    p.grid = mesh::Grid(20, 20, 30, {0, 1}, {0, 1}, {0, 1.5});
    p.cfg = jet.solver_config();
    p.cfg.sigma_sweeps = sweeps;
    p.bc = jet.make_bc();
    app::Simulation<common::Fp64> sim(p);
    sim.init(jet.initial_condition(0.005));
    sim.run_steps(1);
    common::WallTimer t;
    t.start();
    sim.run_steps(2);
    t.stop();
    const double grind =
        t.seconds() * 1e9 / (2.0 * static_cast<double>(p.grid.cells()));
    std::printf("%10d %16.5e %20.0f\n", sweeps, sod_l1(opt), grind);
  }
  std::printf("  -> accuracy saturates by ~5 sweeps while cost keeps "
              "growing: the paper's choice.\n");
}

void ablate_relaxation() {
  bench::print_header("(b) Gauss-Seidel vs Jacobi relaxation");
  IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  opt.sigma_sweeps = 5;
  opt.gauss_seidel = true;
  const double gs = sod_l1(opt);
  opt.gauss_seidel = false;
  const double jac = sod_l1(opt);
  std::printf("  Sod L1: Gauss-Seidel %.5e | Jacobi %.5e (same accuracy "
              "class)\n",
              gs, jac);
  std::printf("  Jacobi costs +1N storage (double buffer) but is "
              "decomposition-exact\n  (bitwise-identical distributed runs; "
              "see tests/test_distributed.cpp).\n");
}

/// L1 error advecting a smooth density wave one half-period (exact solution
/// known); the regime where formal order shows.
double smooth_l1(fv::ReconScheme recon, int n) {
  IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  opt.bc = core::Bc1D::kPeriodic;
  opt.recon = recon;
  IgrSolver1D s(n, 0.0, 1.0, opt);
  s.init([](double x) {
    Prim1 w;
    w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x);
    w.u = 1.0;
    w.p = 100.0;  // acoustically stiff: advection-dominated density
    return w;
  });
  s.advance_to(0.5);
  const auto rho = s.rho();
  double l1 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = s.x(i) - 0.5;  // advected by u*t = 0.5
    l1 += std::abs(rho[static_cast<std::size_t>(i)] -
                   (1.0 + 0.2 * std::sin(2 * M_PI * x))) /
          n;
  }
  return l1;
}

void ablate_recon_order() {
  bench::print_header("(c) Reconstruction order (IGR permits linear schemes)");
  std::printf("%14s %16s %22s\n", "scheme", "Sod L1 error",
              "smooth advection L1");
  IgrSolver1D::Options opt;
  opt.alpha_factor = 5.0;
  struct Case {
    fv::ReconScheme s;
    const char* name;
  };
  for (auto c : {Case{fv::ReconScheme::kFirst, "1st order"},
                 Case{fv::ReconScheme::kThird, "3rd order"},
                 Case{fv::ReconScheme::kFifth, "5th order"}}) {
    opt.recon = c.s;
    std::printf("%14s %16.5e %22.5e\n", c.name, sod_l1(opt),
                smooth_l1(c.s, 64));
  }
  std::printf(
      "  -> at a captured shock the orders are comparable (L1 is dominated\n"
      "     by the regularized transition), but on smooth features — the\n"
      "     turbulence/acoustics the paper targets — high linear order wins\n"
      "     by orders of magnitude, with no limiter in the loop (§5.2, §8).\n");
}

void ablate_alpha() {
  bench::print_header("(d) Regularization strength alpha = factor * dx^2");
  std::printf("%14s %16s %18s\n", "alpha_factor", "Sod L1 error",
              "shock width [cells]");
  for (double af : {1.0, 2.0, 3.0, 5.0, 10.0}) {
    IgrSolver1D::Options opt;
    opt.alpha_factor = af;
    IgrSolver1D s(800, 0.0, 1.0, opt);
    s.init(sod_ic());
    s.advance_to(0.2);
    const auto rho = s.rho();
    int width = 0;
    for (int i = 580; i < 800; ++i) {
      const double r = rho[static_cast<std::size_t>(i)];
      if (r > 0.139 && r < 0.252) ++width;
    }
    std::printf("%14.1f %16.5e %18d\n", af, sod_l1(opt, 800), width);
  }
  std::printf("  -> width ~ sqrt(alpha); small alpha sharpens but risks "
              "under-regularized\n     oscillations, large alpha smears: "
              "the paper's alpha ∝ dx^2 with O(1) factor.\n");
}

}  // namespace

int main() {
  std::printf("igrflow :: ablation of IGR design choices\n");
  ablate_sweeps();
  ablate_relaxation();
  ablate_recon_order();
  ablate_alpha();
  return 0;
}
