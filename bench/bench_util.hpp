#pragma once
/// \file bench_util.hpp
/// Shared helpers for the benchmark harness: the representative workload
/// (single Mach-10 jet, §6.2), table formatting, and local grind-time
/// measurement.

#include <cstdio>
#include <string>

#include "app/jet_config.hpp"
#include "app/simulation.hpp"

namespace igr::bench {

/// The paper's performance workload: "a representative three-dimensional
/// simulation of the exhaust plume of a single Mach 10 jet" (§6.2), at a
/// laptop-scale resolution.
template <class Policy>
app::Simulation<Policy> make_jet_sim(app::SchemeKind scheme, int n = 32,
                                     fv::ReconScheme recon =
                                         fv::ReconScheme::kFifth) {
  const auto jet = app::single_engine();
  typename app::Simulation<Policy>::Params params;
  params.grid = mesh::Grid(n, n, n + n / 2, {0.0, 1.0}, {0.0, 1.0},
                           {0.0, 1.5});
  params.cfg = jet.solver_config();
  params.bc = jet.make_bc();
  params.scheme = scheme;
  params.recon = recon;
  app::Simulation<Policy> sim(params);
  sim.init(jet.initial_condition(0.005));
  return sim;
}

/// Measure ns/cell/step over `steps` steps after `warmup` untimed ones.
template <class Policy>
double measure_grind_ns(app::SchemeKind scheme, int n, int warmup, int steps,
                        fv::ReconScheme recon = fv::ReconScheme::kFifth) {
  auto sim = make_jet_sim<Policy>(scheme, n, recon);
  sim.run_steps(warmup);
  common::WallTimer t;
  t.start();
  sim.run_steps(steps);
  t.stop();
  const double cells = static_cast<double>(sim.grid().cells());
  return t.seconds() * 1.0e9 / (cells * steps);
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace igr::bench
