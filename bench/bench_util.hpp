#pragma once
/// \file bench_util.hpp
/// Shared helpers for the benchmark harness: the representative workload
/// (single Mach-10 jet, §6.2), table formatting, and local grind-time
/// measurement.

#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "app/simulation.hpp"
#include "cases/case.hpp"
#include "cases/runner.hpp"
#include "common/timer.hpp"

namespace igr::bench {

/// Process-wide bench overrides (CLI-settable), applied by make_case_sim /
/// make_jet_sim: `fused_rhs` flips the IGR solver between the fused
/// pipeline (default) and the phased reference — `bench_grind --phased` —
/// so pre/post grind comparisons can alternate both schedules from one
/// binary; `exec_threads` widens the in-rank kernel teams (`bench_grind
/// --threads`).
struct BenchOverrides {
  bool fused_rhs = true;
  int fused_flux_block = 0;  ///< 0 = keep the SolverConfig default.
  int exec_threads = 0;      ///< Exec-space width (0 = ambient).
};
inline BenchOverrides& bench_overrides() {
  static BenchOverrides o;
  return o;
}

/// Any registered case as a bench workload, built through the front-door
/// options layer: a cases::RunOptions request (bench overrides folded in)
/// lowered by RunOptions::to_params, plus the bench-only knobs the options
/// layer deliberately does not carry (per-phase timing, the fused flux
/// block-size sweep).
template <class Policy>
app::Simulation<Policy> make_case_sim(const cases::CaseSpec& spec,
                                      app::SchemeKind scheme, int n = 32,
                                      fv::ReconScheme recon =
                                          fv::ReconScheme::kFifth) {
  cases::RunOptions opts;
  opts.n = n;
  opts.scheme = scheme;
  opts.recon = recon;
  opts.fused_rhs = bench_overrides().fused_rhs;
  opts.threads = bench_overrides().exec_threads;
  // Per-phase attribution for the bench JSON (sub-0.5% sampling overhead).
  opts.phase_timing = true;
  auto params = opts.to_params<Policy>(spec);
  if (bench_overrides().fused_flux_block > 0)
    params.cfg.fused_flux_block = bench_overrides().fused_flux_block;
  app::Simulation<Policy> sim(std::move(params));
  sim.init(spec.initial());
  return sim;
}

/// The paper's performance workload: "a representative three-dimensional
/// simulation of the exhaust plume of a single Mach 10 jet" (§6.2), at a
/// laptop-scale resolution.  The registered `jet-single` case reproduces
/// the historical bench workload exactly (same grid aspect, config, and
/// seeded initial condition), so the jet rows route through the same
/// options seam as every `--case` row.
template <class Policy>
app::Simulation<Policy> make_jet_sim(app::SchemeKind scheme, int n = 32,
                                     fv::ReconScheme recon =
                                         fv::ReconScheme::kFifth) {
  const cases::CaseSpec* spec = cases::find("jet-single");
  if (!spec) throw std::logic_error("case registry lost 'jet-single'");
  return make_case_sim<Policy>(*spec, scheme, n, recon);
}

/// One grind measurement: wall ns/cell/step plus, for the single-domain IGR
/// scheme, the per-phase attribution (same unit; phases don't sum to the
/// wall figure exactly — step orchestration overhead is untimed).
struct GrindSample {
  double grind_ns = 0.0;
  bool has_phases = false;
  std::array<double, common::PhaseProfile::kNumPhases> phase_ns{};
};

/// Measure an already-initialized simulation over `steps` steps after
/// `warmup` untimed ones (the phase profile is reset after warmup so it
/// covers exactly the timed window).
template <class Policy>
GrindSample measure_sim_grind(app::Simulation<Policy>& sim, int warmup,
                              int steps) {
  sim.run_steps(warmup);
  if (auto* prof = sim.phase_profile()) prof->reset();
  common::WallTimer t;
  t.start();
  sim.run_steps(steps);
  t.stop();
  const double cells = static_cast<double>(sim.grid().cells());
  GrindSample s;
  s.grind_ns = t.seconds() * 1.0e9 / (cells * steps);
  if (auto* prof = sim.phase_profile(); prof && prof->enabled()) {
    s.has_phases = true;
    for (int p = 0; p < common::PhaseProfile::kNumPhases; ++p) {
      s.phase_ns[static_cast<std::size_t>(p)] =
          prof->seconds(static_cast<common::PhaseProfile::Phase>(p)) * 1.0e9 /
          (cells * steps);
    }
  }
  return s;
}

/// Grind of the paper's jet workload (the historical bench rows).
template <class Policy>
GrindSample measure_grind(app::SchemeKind scheme, int n, int warmup, int steps,
                          fv::ReconScheme recon = fv::ReconScheme::kFifth) {
  auto sim = make_jet_sim<Policy>(scheme, n, recon);
  return measure_sim_grind(sim, warmup, steps);
}

/// Grind of a registered case (`bench_grind --case`).
template <class Policy>
GrindSample measure_case_grind(const cases::CaseSpec& spec,
                               app::SchemeKind scheme, int n, int warmup,
                               int steps,
                               fv::ReconScheme recon =
                                   fv::ReconScheme::kFifth) {
  auto sim = make_case_sim<Policy>(spec, scheme, n, recon);
  return measure_sim_grind(sim, warmup, steps);
}

/// Measure ns/cell/step over `steps` steps after `warmup` untimed ones.
template <class Policy>
double measure_grind_ns(app::SchemeKind scheme, int n, int warmup, int steps,
                        fv::ReconScheme recon = fv::ReconScheme::kFifth) {
  return measure_grind<Policy>(scheme, n, warmup, steps, recon).grind_ns;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace igr::bench
