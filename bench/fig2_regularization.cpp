/// \file fig2_regularization.cpp
/// Reproduces paper Fig. 2: how the two regularizations treat
///   (a) a shock problem       — LAD spreads it over a user-defined width
///                               with a profile that is not high-order
///                               smooth; IGR replaces it with a smooth
///                               profile at the grid scale;
///   (b) an oscillatory problem — widening LAD (as coarse grids demand)
///                               dissipates genuine oscillations; IGR
///                               preserves them.
///
/// Ground truth: the exact Riemann solution for (a); a fine-grid reference
/// for (b) (Shu–Osher shock/entropy-wave interaction).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/lad_solver1d.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/igr_solver1d.hpp"
#include "fv/exact_riemann.hpp"

namespace {

using namespace igr;
using core::Bc1D;
using core::IgrSolver1D;
using core::Prim1;

// ---------------- (a) shock problem ----------------

void shock_problem() {
  bench::print_header("Fig. 2(a): shock problem — LAD vs IGR vs exact (Sod)");
  const int n = 200;  // deliberately coarse, as in the figure
  auto ic = [](double x) {
    Prim1 w;
    if (x < 0.5) {
      w.rho = 1.0;
      w.p = 1.0;
    } else {
      w.rho = 0.125;
      w.p = 0.1;
    }
    return w;
  };

  // Width-matched comparison: alpha_factor = 3 and c_lad = 10 both capture
  // the Sod shock over ~5 cells on this grid, so the schemes are compared
  // at equal shock resolution.
  baseline::LadSolver1D::Options lopt;
  lopt.c_lad = 10.0;
  baseline::LadSolver1D lad(n, 0.0, 1.0, lopt);
  lad.init(ic);
  lad.advance_to(0.2);

  IgrSolver1D::Options iopt;
  iopt.alpha_factor = 3.0;
  IgrSolver1D igr(n, 0.0, 1.0, iopt);
  igr.init(ic);
  igr.advance_to(0.2);

  fv::ExactRiemann exact(fv::sod_left(), fv::sod_right(), 1.4);
  const auto ref = exact.sample_profile(n, 0.0, 1.0, 0.5, 0.2);

  const auto rl = lad.rho();
  const auto ri = igr.rho();
  std::printf("%8s %10s %10s %10s   (shock region)\n", "x", "exact", "LAD",
              "IGR");
  for (int i = 150; i < 190; i += 2) {
    std::printf("%8.4f %10.5f %10.5f %10.5f\n", igr.x(i),
                ref[static_cast<std::size_t>(i)].rho,
                rl[static_cast<std::size_t>(i)],
                ri[static_cast<std::size_t>(i)]);
  }

  auto l1 = [&](const std::vector<double>& v) {
    double e = 0;
    for (int i = 0; i < n; ++i)
      e += std::abs(v[static_cast<std::size_t>(i)] -
                    ref[static_cast<std::size_t>(i)].rho) /
           n;
    return e;
  };
  // Captured shock width: transition cells between the plateaus.
  auto width = [&](const std::vector<double>& v) {
    int cells = 0;
    for (int i = 145; i < n; ++i) {
      const double r = v[static_cast<std::size_t>(i)];
      if (r > 0.139 && r < 0.252) ++cells;
    }
    return cells;
  };
  std::printf("\nL1 density error      : LAD %.4e | IGR %.4e\n", l1(rl),
              l1(ri));
  std::printf("captured shock width  : LAD %d cells | IGR %d cells "
              "(width-matched setup)\n",
              width(rl), width(ri));
}

// ---------------- (b) oscillatory problem ----------------

/// Shu–Osher: Mach-3 shock running into an entropy wave.
auto shu_osher_ic() {
  return [](double x) {
    Prim1 w;
    if (x < -4.0) {
      w.rho = 3.857143;
      w.u = 2.629369;
      w.p = 10.33333;
    } else {
      w.rho = 1.0 + 0.2 * std::sin(5.0 * x);
      w.u = 0.0;
      w.p = 1.0;
    }
    return w;
  };
}

/// Total variation of the density in the post-shock oscillatory region —
/// the feature LAD dissipates and IGR preserves.
double oscillation_tv(const std::vector<double>& rho, int n) {
  // Post-shock oscillations live in roughly x in [-3, 0.5] at t = 1.8.
  const int i0 = static_cast<int>((-3.0 + 5.0) / 10.0 * n);
  const int i1 = static_cast<int>((0.5 + 5.0) / 10.0 * n);
  std::vector<double> seg(rho.begin() + i0, rho.begin() + i1);
  return common::total_variation(seg);
}

void oscillatory_problem() {
  bench::print_header(
      "Fig. 2(b): oscillatory problem — Shu-Osher shock/entropy-wave");
  const int n = 400;
  const double t_end = 1.8;

  // Fine-grid IGR reference ("exact" curve of the figure).
  IgrSolver1D::Options ref_opt;
  ref_opt.alpha_factor = 2.0;
  ref_opt.gamma = 1.4;
  IgrSolver1D ref(3200, -5.0, 5.0, ref_opt);
  ref.init(shu_osher_ic());
  ref.advance_to(t_end);
  const double tv_ref = oscillation_tv(ref.rho(), 3200) ;

  IgrSolver1D::Options iopt;
  iopt.alpha_factor = 3.0;  // same width-matched setting as part (a)
  IgrSolver1D igr(n, -5.0, 5.0, iopt);
  igr.init(shu_osher_ic());
  igr.advance_to(t_end);

  auto run_lad = [&](double c_lad) {
    baseline::LadSolver1D::Options lopt;
    lopt.c_lad = c_lad;
    baseline::LadSolver1D lad(n, -5.0, 5.0, lopt);
    lad.init(shu_osher_ic());
    lad.advance_to(t_end);
    return lad.rho();
  };
  const auto lad_weak = run_lad(10.0);  // width-matched to IGR (part a)
  const auto lad_wide = run_lad(40.0);  // the width coarse grids demand

  const double tv_igr = oscillation_tv(igr.rho(), n);
  const double tv_lad_weak = oscillation_tv(lad_weak, n);
  const double tv_lad_wide = oscillation_tv(lad_wide, n);

  std::printf("Post-shock oscillation total variation (reference = fine-grid "
              "run):\n");
  std::printf("  %-34s %8.4f (%.0f%% of reference)\n", "fine-grid reference",
              tv_ref, 100.0);
  std::printf("  %-34s %8.4f (%.0f%% preserved)\n", "IGR, 400 cells", tv_igr,
              100.0 * tv_igr / tv_ref);
  std::printf("  %-34s %8.4f (%.0f%% preserved)\n",
              "LAD width-matched, 400 cells", tv_lad_weak,
              100.0 * tv_lad_weak / tv_ref);
  std::printf("  %-34s %8.4f (%.0f%% preserved)\n", "LAD wide, 400 cells",
              tv_lad_wide, 100.0 * tv_lad_wide / tv_ref);
  std::printf(
      "\nShape check (paper Fig. 2): IGR preserves the oscillatory features; "
      "the\nwide LAD needed for coarse grids dissipates them "
      "(IGR/LAD-wide = %.2fx).\n",
      tv_igr / tv_lad_wide);

  std::printf("\n%8s %10s %10s %10s (post-shock sample)\n", "x", "IGR",
              "LAD-match", "LAD-wide");
  const auto ri = igr.rho();
  for (int i = 110; i < 200; i += 6) {
    std::printf("%8.3f %10.5f %10.5f %10.5f\n", igr.x(i),
                ri[static_cast<std::size_t>(i)],
                lad_weak[static_cast<std::size_t>(i)],
                lad_wide[static_cast<std::size_t>(i)]);
  }
}

}  // namespace

int main() {
  std::printf("igrflow :: Fig. 2 reproduction (inviscid regularization)\n");
  shock_problem();
  oscillatory_problem();
  return 0;
}
