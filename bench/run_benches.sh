#!/usr/bin/env bash
# Run the perf harness and the paper fig/table benches at a small "smoke"
# size, writing BENCH_<label>.json into the repo root so perf regressions
# are one `diff` away.
#
# Usage:
#   bench/run_benches.sh [label] [build-dir]
#
#   label      name embedded in the output file (default: smoke)
#   build-dir  an existing CMake build tree (default: ./build)
#
# The full-size grind matrix (the numbers checked in as BENCH_pr<N>.json,
# see PERF.md) is:
#   build/bench_grind --n 32 --warmup 2 --steps 6 --label pr<N> \
#                     --out BENCH_pr<N>.json
#
# Sibling flow: bench/run_sanitize.sh runs the unit-test suite under
# ASan+UBSan in one command (perf smoke here, memory/UB smoke there).
set -euo pipefail

label="${1:-smoke}"
build="${2:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -x "$root/$build/bench_grind" ]]; then
  echo "run_benches.sh: $build/bench_grind not built." >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Grind-time matrix (the primary perf-trajectory artifact), with per-case
# rows for the two canonical non-jet workload shapes (full-size flow adds
# `--case ...` the same way; see PERF.md).
"$root/$build/bench_grind" --smoke --label "$label" \
    --case sod-x --case taylor-green \
    --out "$root/BENCH_${label}.json"

# Executed strong/weak rank scaling of the distributed driver (full-size
# flow: bench_scaling --n 32 --ranks 1,2,4,8 --label prN
#                     --out BENCH_prN_scaling.json).
"$root/$build/bench_scaling" --smoke --label "${label}_scaling" \
    --out "$root/BENCH_${label}_scaling.json"

# Paper-artifact benches that are cheap enough for a smoke pass; these
# print tables rather than JSON and serve as a does-it-still-run probe.
for b in fig2_regularization ablation_design_choices; do
  if [[ -x "$root/$build/$b" ]]; then
    echo "--- $b"
    "$root/$build/$b" >/dev/null || { echo "$b FAILED" >&2; exit 1; }
    echo "ok"
  fi
done

echo "wrote $root/BENCH_${label}.json and $root/BENCH_${label}_scaling.json"
