/// \file bench_scaling.cpp
/// *Executed* strong and weak scaling of the rank-parallel distributed IGR
/// driver on the Mach-10 single-jet workload (§6.2) — the companion to the
/// fig6/fig7 scaling *model* reproductions, which predict; this harness
/// measures.  Each rank runs on its own worker thread with a pinned
/// single-thread OpenMP team, so speedup isolates rank parallelism (the MPI
/// analogue: one process per rank), with the overlapped halo pipeline
/// active.  Emits JSON like bench_grind; every scaling PR checks the result
/// in as BENCH_<name>_scaling.json (see PERF.md).
///
/// Usage:
///   bench_scaling [--smoke] [--n N] [--weak-n M] [--ranks 1,2,4,8]
///                 [--warmup W] [--steps S] [--mode strong|weak|both]
///                 [--threads-per-rank T] [--label NAME] [--out PATH]
///                 [--precision fp64|fp32|fp16x32|bf16x32] [--wire full|half]
///                 [--transport inproc|tcp]
///
/// --wire half narrows the state and Sigma halo payloads to binary16 on the
/// wire (Comm::WirePrecision::kHalf); the halo_mb_per_step column measures
/// the reduction directly (2x for fp32, 4x for fp64; 16-bit storage already
/// moves 2-byte halos, so half wire is a bitwise no-op there).
///
/// --transport tcp runs each rank as its own Comm endpoint exchanging over
/// loopback sockets (one endpoint thread per rank in this process — the
/// same wire path igr_launch drives with real processes), measuring the
/// framing/socket overhead against the shared-memory baseline.
///
/// Strong: fixed N x N x 1.5N global jet, growing rank counts.
/// Weak:   fixed M^3 cells per rank, domain resolution grows with ranks.
///
/// Interpreting results: rank speedup can only materialize when the host
/// exposes enough cores (hardware_concurrency is recorded in the JSON); on
/// a single-core container all rank counts time-share one core and the
/// curve measures scheduling overhead instead.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include "app/jet_config.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "mesh/decomp.hpp"
#include "sim/distributed_igr.hpp"

namespace {

using namespace igr;

struct Point {
  std::string mode;
  int ranks = 1;
  std::array<int, 3> layout{1, 1, 1};
  std::array<int, 3> grid{0, 0, 0};
  double time_per_step_s = 0.0;
  double grind_ns = 0.0;
  double speedup = 1.0;     ///< strong: t_base/t at equal total work
  double efficiency = 1.0;  ///< strong: speedup/ideal; weak: t_base/t
  double halo_mb_per_step = 0.0;
  /// Halo WAIT (the acquire spin in Comm::complete_axis, excluding
  /// pack/unpack) — mean per rank per step, summed over the team.
  double halo_wait_ms_per_step = 0.0;
  double halo_wait_epochs_per_step = 0.0;  ///< completed epochs, per rank
};

common::SolverConfig scaling_cfg() {
  auto cfg = app::single_engine().solver_config();
  // Jacobi sweeps: decomposition-exact, so every rank count performs
  // identical arithmetic on identical bits — the clean scaling comparison
  // (and the mode whose equivalence the test suite enforces).
  cfg.sigma_gauss_seidel = false;
  return cfg;
}

/// Rendezvous scratch for the tcp transport's endpoint threads.
std::string fresh_rendezvous_dir() {
  static int counter = 0;
  const std::string dir =
      "bench_scaling_rdv_" + std::to_string(++counter);
  std::remove(dir.c_str());
#if defined(__unix__) || defined(__APPLE__)
  ::mkdir(dir.c_str(), 0777);
#endif
  return dir;
}

/// Time `steps` CFL steps of the decomposed jet; returns seconds per step.
template <class Policy>
Point run_case_t(const char* mode, const mesh::Grid& grid,
                 std::array<int, 3> layout, int warmup, int steps,
                 int threads_per_rank, sim::Comm::WirePrecision wire,
                 sim::TransportSpec::Kind transport) {
  const auto jet = app::single_engine();
  const int R = layout[0] * layout[1] * layout[2];
  Point p;
  p.mode = mode;
  p.ranks = R;
  p.layout = layout;
  p.grid = {grid.nx(), grid.ny(), grid.nz()};

  /// Drive one endpoint: the whole team in-process (rank < 0), or exactly
  /// `rank` over the tcp wire.  Rank 0 (or the in-process endpoint) fills
  /// the timing columns; halo traffic is summed over all endpoints.
  const auto drive = [&](int rank, const std::string& dir) {
    sim::DistOptions opts;
    opts.threads_per_rank = threads_per_rank;
    opts.halo_wire = wire;
    if (rank >= 0) {
      opts.transport.kind = sim::TransportSpec::Kind::kTcp;
      opts.transport.world = R;
      opts.transport.rank = rank;
      opts.transport.dir = dir;
    }
    sim::DistributedIgr<Policy> d(grid, layout[0], layout[1], layout[2],
                                  scaling_cfg(), jet.make_bc(),
                                  fv::ReconScheme::kFifth, opts);
    d.init(jet.initial_condition(0.005));
    for (int s = 0; s < warmup; ++s) d.step();
    d.comm().reset_traffic();
    d.comm().barrier();  // endpoints start the timed window together
    common::WallTimer t;
    t.start();
    for (int s = 0; s < steps; ++s) d.step();
    t.stop();
    const double bytes = d.comm().allreduce_sum_global(
        static_cast<double>(d.comm().bytes_exchanged()));
    const double wait_ns = d.comm().allreduce_sum_global(
        static_cast<double>(d.comm().halo_wait_ns_total()));
    const double wait_epochs = d.comm().allreduce_sum_global(
        static_cast<double>(d.comm().halo_wait_epochs_total()));
    if (rank <= 0) {
      p.time_per_step_s = t.seconds() / steps;
      p.grind_ns =
          t.seconds() * 1.0e9 / (static_cast<double>(grid.cells()) * steps);
      p.halo_mb_per_step = 1.0e-6 * bytes / steps;
      p.halo_wait_ms_per_step = 1.0e-6 * wait_ns / (steps * R);
      p.halo_wait_epochs_per_step = wait_epochs / (static_cast<double>(steps) * R);
    }
  };

  if (transport == sim::TransportSpec::Kind::kTcp) {
    const std::string dir = fresh_rendezvous_dir();
    std::vector<std::thread> endpoints;
    endpoints.reserve(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r)
      endpoints.emplace_back([&, r] { drive(r, dir); });
    for (auto& e : endpoints) e.join();
  } else {
    drive(-1, "");
  }

  std::printf("  %-6s %2d ranks (%dx%dx%d)  %3dx%3dx%3d  %9.4f ms/step  "
              "%8.1f ns/cell/step  %8.2f MB halo/step  %7.3f ms wait/step\n",
              mode, p.ranks, layout[0], layout[1], layout[2], p.grid[0],
              p.grid[1], p.grid[2], 1e3 * p.time_per_step_s, p.grind_ns,
              p.halo_mb_per_step, p.halo_wait_ms_per_step);
  std::fflush(stdout);
  return p;
}

Point run_case(const char* mode, const mesh::Grid& grid,
               std::array<int, 3> layout, int warmup, int steps,
               int threads_per_rank, const std::string& precision,
               sim::Comm::WirePrecision wire,
               sim::TransportSpec::Kind transport) {
  if (precision == "fp32")
    return run_case_t<common::Fp32>(mode, grid, layout, warmup, steps,
                                    threads_per_rank, wire, transport);
  if (precision == "fp16x32")
    return run_case_t<common::Fp16x32>(mode, grid, layout, warmup, steps,
                                       threads_per_rank, wire, transport);
  if (precision == "bf16x32")
    return run_case_t<common::Bf16x32>(mode, grid, layout, warmup, steps,
                                       threads_per_rank, wire, transport);
  return run_case_t<common::Fp64>(mode, grid, layout, warmup, steps,
                                  threads_per_rank, wire, transport);
}

void write_json(const std::string& path, const std::string& label, int warmup,
                int steps, int threads_per_rank,
                const std::string& precision, const std::string& wire,
                const std::string& transport, const std::vector<Point>& pts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_scaling: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"name\": \"%s\",\n", label.c_str());
  std::fprintf(f, "  \"workload\": \"mach10_single_jet_distributed\",\n");
  std::fprintf(f, "  \"metric\": \"time_per_step_s\",\n");
  std::fprintf(f, "  \"sigma_sweeps\": \"jacobi\",\n");
  std::fprintf(f, "  \"precision\": \"%s\",\n", precision.c_str());
  std::fprintf(f, "  \"halo_wire\": \"%s\",\n", wire.c_str());
  std::fprintf(f, "  \"transport\": \"%s\",\n", transport.c_str());
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"threads_per_rank\": %d,\n", threads_per_rank);
  std::fprintf(f, "  \"warmup_steps\": %d,\n", warmup);
  std::fprintf(f, "  \"timed_steps\": %d,\n", steps);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto& p = pts[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"ranks\": %d, "
                 "\"layout\": [%d, %d, %d], \"grid\": [%d, %d, %d], "
                 "\"time_per_step_s\": %.6e, "
                 "\"grind_ns_per_cell_step\": %.2f, \"speedup\": %.3f, "
                 "\"efficiency\": %.3f, \"halo_mb_per_step\": %.3f, "
                 "\"halo_wait_ms_per_step\": %.4f, "
                 "\"halo_wait_epochs_per_step\": %.2f}%s\n",
                 p.mode.c_str(), p.ranks, p.layout[0], p.layout[1],
                 p.layout[2], p.grid[0], p.grid[1], p.grid[2],
                 p.time_per_step_s, p.grind_ns, p.speedup, p.efficiency,
                 p.halo_mb_per_step, p.halo_wait_ms_per_step,
                 p.halo_wait_epochs_per_step, (i + 1 < pts.size()) ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  namespace ccli = igr::common::cli;
  int n = 32, weak_n = 16, warmup = 1, steps = 3, threads_per_rank = 1;
  std::vector<int> rank_counts{1, 2, 4, 8};
  std::string out = "BENCH_scaling.json";
  std::string label = "scaling";
  std::string mode = "both";
  std::string precision = "fp64";
  std::string wire = "full";
  std::string transport = "inproc";
  bool smoke = false;
  ccli::Args args("bench_scaling", argc, argv);
  while (args.next()) {
    if (args.is("--smoke")) {
      smoke = true;
    } else if (args.is("--n")) {
      n = args.int_value(1);
    } else if (args.is("--weak-n")) {
      weak_n = args.int_value(1);
    } else if (args.is("--ranks")) {
      rank_counts = args.int_list_value(1);
    } else if (args.is("--warmup")) {
      warmup = args.int_value(0);
    } else if (args.is("--steps")) {
      steps = args.int_value(1);
    } else if (args.is("--threads-per-rank")) {
      threads_per_rank = args.int_value(0);
    } else if (args.is("--mode")) {
      constexpr const char* kModes[] = {"strong", "weak", "both"};
      mode = kModes[args.choice_value({"strong", "weak", "both"})];
    } else if (args.is("--precision")) {
      constexpr const char* kPrec[] = {"fp64", "fp32", "fp16x32", "bf16x32"};
      precision =
          kPrec[args.choice_value({"fp64", "fp32", "fp16x32", "bf16x32"})];
    } else if (args.is("--wire")) {
      constexpr const char* kWires[] = {"full", "half"};
      wire = kWires[args.choice_value({"full", "half"})];
    } else if (args.is("--transport")) {
      constexpr const char* kTp[] = {"inproc", "tcp"};
      transport = kTp[args.choice_value({"inproc", "tcp"})];
    } else if (args.is("--label")) {
      label = args.value();
    } else if (args.is("--out")) {
      out = args.value();
    } else {
      args.die(std::string("unknown arg ") + args.flag());
    }
  }
  if (smoke) {
    n = 16;
    weak_n = 8;
    warmup = 1;
    steps = 2;
    rank_counts = {1, 2, 4};
    if (label == "scaling") label = "scaling_smoke";
  }
  const auto wire_mode = (wire == "half") ? sim::Comm::WirePrecision::kHalf
                                          : sim::Comm::WirePrecision::kFull;
  const auto transport_kind = sim::TransportSpec::parse_kind(transport);
  if (n < 8 || weak_n < 4 || steps < 1 || warmup < 0 || threads_per_rank < 0) {
    std::fprintf(stderr, "bench_scaling: need --n >= 8, --weak-n >= 4, "
                         "--steps >= 1, --warmup >= 0\n");
    return 2;
  }

  std::printf("igrflow bench_scaling: n=%d weak-n=%d warmup=%d steps=%d "
              "threads/rank=%d precision=%s wire=%s transport=%s "
              "hw_concurrency=%u\n",
              n, weak_n, warmup, steps, threads_per_rank, precision.c_str(),
              wire.c_str(), transport.c_str(),
              std::thread::hardware_concurrency());
  std::vector<Point> pts;

  if (mode != "weak") {
    std::printf("strong scaling (fixed %dx%dx%d jet):\n", n, n, n + n / 2);
    const mesh::Grid grid(n, n, n + n / 2, {0.0, 1.0}, {0.0, 1.0},
                          {0.0, 1.5});
    double t_base = 0.0;
    int r_base = 1;
    for (std::size_t i = 0; i < rank_counts.size(); ++i) {
      const int R = rank_counts[i];
      auto p = run_case("strong", grid, mesh::Decomp::balanced_layout(R),
                        warmup, steps, threads_per_rank, precision,
                        wire_mode, transport_kind);
      if (i == 0) {
        t_base = p.time_per_step_s;
        r_base = R;
      }
      p.speedup = t_base / p.time_per_step_s;
      p.efficiency = p.speedup * r_base / R;
      pts.push_back(p);
    }
    const auto& last = pts.back();
    std::printf("  -> %.2fx speedup at %d ranks (%.0f%% efficiency)\n",
                last.speedup, last.ranks, 100.0 * last.efficiency);
  }

  if (mode != "strong") {
    std::printf("weak scaling (fixed %d^3 cells per rank):\n", weak_n);
    double t_base = 0.0;
    for (std::size_t i = 0; i < rank_counts.size(); ++i) {
      const int R = rank_counts[i];
      const auto lay = mesh::Decomp::balanced_layout(R);
      const mesh::Grid grid(weak_n * lay[0], weak_n * lay[1],
                            weak_n * lay[2], {0.0, 1.0}, {0.0, 1.0},
                            {0.0, 1.0});
      auto p = run_case("weak", grid, lay, warmup, steps, threads_per_rank,
                        precision, wire_mode, transport_kind);
      if (i == 0) t_base = p.time_per_step_s;
      p.speedup = t_base / p.time_per_step_s;
      p.efficiency = p.speedup;  // fixed work per rank: ideal is flat time
      pts.push_back(p);
    }
    const auto& last = pts.back();
    std::printf("  -> %.0f%% weak efficiency at %d ranks\n",
                100.0 * last.efficiency, last.ranks);
  }

  write_json(out, label, warmup, steps, threads_per_rank, precision, wire,
             transport, pts);
  return 0;
}
