/// \file fig6_weak_scaling.cpp
/// Reproduces paper Fig. 6: weak scaling of the IGR solver (FP16/32,
/// unified memory) on El Capitan, Frontier, and Alps, out to the full
/// systems — plus the §7.2 problem-size headlines (200T cells / 1
/// quadrillion DoF on Frontier; the JUPITER extrapolation).
///
/// Two parts:
///   1. Model-driven series (platform grind times + network model), the
///      substitution for 11k-node machines we do not have.
///   2. An executed in-process weak-scaling run over the simulated
///      communicator: per-rank work is held fixed while ranks increase;
///      the normalized per-rank-per-cell time stays flat, demonstrating the
///      same property the figure shows (on one CPU the ranks execute
///      sequentially, so total wall time grows by construction; the metric
///      is time / (ranks * cells)).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/memory_footprint.hpp"
#include "mem/memory_model.hpp"
#include "perf/scaling_model.hpp"
#include "sim/distributed_igr.hpp"

namespace {

using namespace igr;

void model_series() {
  bench::print_header(
      "Fig. 6 (model): normalized wall time, weak scaling, IGR FP16/32 "
      "unified");
  for (const auto& p : perf::all_platforms()) {
    perf::ScalingModel m(p, perf::Scheme::kIgr, perf::Precision::kFp16x32,
                         perf::MemMode::kUnified);
    std::vector<int> counts;
    for (int c : {64, 128, 256, 1024, 4096, 16384}) {
      if (c < p.full_system_devices()) counts.push_back(c);
    }
    counts.push_back(p.full_system_devices());
    const auto pts = m.weak_scaling(p.weak_cells_per_device, counts);
    std::printf("\n%s (%s, %.0f^3 cells/device):\n", p.name.c_str(),
                p.device.c_str(), std::cbrt(p.weak_cells_per_device));
    std::printf("  %10s %16s %12s\n", "devices", "norm. time", "efficiency");
    const double t0 = pts.front().time_per_step_s;
    for (const auto& pt : pts) {
      std::printf("  %10d %16.4f %11.1f%%%s\n", pt.devices,
                  pt.time_per_step_s / t0, 100.0 * pt.efficiency,
                  pt.devices == p.full_system_devices() ? "   <- full system"
                                                        : "");
    }
  }
  std::printf(
      "\nPaper: 97%% at 43K MI300As (El Capitan), ~100%% at 37.6K MI250Xs\n"
      "(Frontier), ~100%% at 9.2K GH200s (Alps).\n");
}

void capacity_headlines() {
  bench::print_header("§7.2 problem-size headlines (capacity model)");
  const auto fr = perf::frontier();
  const auto al = perf::alps();
  const auto ec = perf::el_capitan();

  const double cells_frontier =
      fr.weak_cells_per_device * fr.full_system_devices();
  const double cells_alps = al.weak_cells_per_device * al.full_system_devices();
  const double cells_ec = ec.weak_cells_per_device * 43000.0;

  std::printf("  Frontier : %5.0fT cells (%4.2f quadrillion DoF)  [paper: "
              ">200T, 1Q]\n",
              cells_frontier / 1e12, cells_frontier * 5 / 1e15);
  std::printf("  Alps     : %5.0fT cells                          [paper: "
              "45T]\n",
              cells_alps / 1e12);
  std::printf("  El Capitan: %4.0fT cells                          [paper: "
              "113T]\n",
              cells_ec / 1e12);

  // JUPITER extrapolation: same architecture as Alps (§5.6); scale by the
  // device count that reproduces the paper's 100.3T figure.
  const double jupiter_devices = 100.3e12 / al.weak_cells_per_device;
  std::printf("  JUPITER  : 100.3T cells requires ~%.0f GH200s (paper "
              "extrapolates\n             100.3T / 501T DoF on its matching "
              "architecture)\n",
              jupiter_devices);

  // Capacity cross-check from the memory model.
  mem::Placement pl;
  pl.host_igr_temporaries = true;
  const auto igr16 = core::igr_footprint(2);
  std::printf("\n  per-device capacity (FP16 storage, 10/17 on-device):\n");
  for (const auto& p : {fr, al, ec}) {
    const double cap = mem::MemoryModel::capacity_cells(
        p, igr16, perf::MemMode::kUnified, pl);
    std::printf("    %-10s %8.2fB cells (paper run used %.2fB = %.0f^3)\n",
                p.device.c_str(), cap / 1e9, p.weak_cells_per_device / 1e9,
                std::cbrt(p.weak_cells_per_device));
  }
}

void executed_series() {
  bench::print_header(
      "Fig. 6 (executed, in-process): fixed 16^3 cells/rank, Jacobi sweeps");
  common::SolverConfig cfg;
  cfg.alpha_factor = 5.0;
  cfg.sigma_gauss_seidel = false;
  const auto bc = fv::BcSpec::all_periodic();
  auto ic = [](double x, double y, double z) {
    common::Prim<double> w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.u = 0.4 * std::sin(2 * M_PI * z);
    w.p = 1.0;
    return w;
  };
  std::printf("  %6s %10s %22s %12s\n", "ranks", "cells", "ns/cell/step/rank",
              "efficiency");
  double t0 = 0.0;
  for (auto [rx, ry, rz] : {std::array<int, 3>{1, 1, 1},
                            std::array<int, 3>{2, 1, 1},
                            std::array<int, 3>{2, 2, 1},
                            std::array<int, 3>{2, 2, 2}}) {
    const int ranks = rx * ry * rz;
    mesh::Grid g(16 * rx, 16 * ry, 16 * rz, {0, 1. * rx}, {0, 1. * ry},
                 {0, 1. * rz});
    sim::DistributedIgr<common::Fp64> d(g, rx, ry, rz, cfg, bc);
    d.init(ic);
    d.step_fixed(1e-3);  // warm-up
    common::WallTimer t;
    t.start();
    const int steps = 3;
    for (int s = 0; s < steps; ++s) d.step_fixed(1e-3);
    t.stop();
    const double per = t.seconds() * 1e9 /
                       (static_cast<double>(g.cells()) * steps);
    if (ranks == 1) t0 = per;
    std::printf("  %6d %10zu %22.1f %11.1f%%\n", ranks, g.cells(), per,
                100.0 * t0 / per);
  }
  std::printf("  (flat ns/cell/rank = ideal weak scaling of the decomposed "
              "solver)\n");
}

}  // namespace

int main() {
  std::printf("igrflow :: Fig. 6 reproduction (weak scaling)\n");
  model_series();
  capacity_headlines();
  executed_series();
  return 0;
}
