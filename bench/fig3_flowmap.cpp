/// \file fig3_flowmap.cpp
/// Reproduces paper Fig. 3: information geometric regularization modifies
/// the geometry by which the flow map evolves so that two tracer
/// trajectories t -> phi_t(x1), phi_t(x2) *converge* instead of crossing.
/// The regularization strength alpha sets the rate of convergence; the
/// vanishing-viscosity solution is recovered as alpha -> 0.
///
/// Setting: 1-D pressureless Euler (the system in which IGR was first
/// derived), converging initial velocity, tracers seeded either side of the
/// would-be collision point.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/igr_solver1d.hpp"

int main() {
  using namespace igr;
  using core::Bc1D;
  using core::IgrSolver1D;
  using core::Prim1;

  std::printf("igrflow :: Fig. 3 reproduction (flow-map trajectories)\n");

  // The paper's Fig. 3 sweeps alpha over {1e-5, 1e-4, 1e-3} with a
  // semi-analytic solver; our explicit FV realization is stable down to
  // ~1e-4 on affordable grids (the regularized density spike amplitude
  // grows as alpha shrinks), so we sweep the same two-decade range shifted
  // one decade up.  See EXPERIMENTS.md.
  const std::vector<double> alphas{1e-2, 1e-3, 1e-4};
  const double t_end = 0.6;
  const double x1 = 0.85, x2 = 1.15;

  bench::print_header(
      "Tracer trajectories phi_t(x1), phi_t(x2) under the alpha sweep");
  std::printf("Initial positions: x1 = %.2f, x2 = %.2f; colliding velocity "
              "u = -tanh((x-1)/0.05)\n\n",
              x1, x2);
  std::printf("%6s", "t");
  for (double a : alphas) std::printf("      gap(a=%7.0e)", a);
  std::printf("\n");

  struct Run {
    std::unique_ptr<IgrSolver1D> s;
    int t1, t2;
  };
  std::vector<Run> runs;
  for (double a : alphas) {
    IgrSolver1D::Options opt;
    opt.pressureless = true;
    opt.alpha = a;
    opt.bc = Bc1D::kOutflow;
    opt.cfl = 0.3;
    // Resolution tracks sqrt(alpha): the regularized profile must be
    // resolved for the smallest alpha.
    const int n = (a >= 1e-2) ? 512 : (a >= 1e-3) ? 1024 : 2048;
    auto s = std::make_unique<IgrSolver1D>(n, 0.0, 2.0, opt);
    s->init([](double x) {
      Prim1 w;
      w.rho = 1.0;
      w.u = -std::tanh((x - 1.0) / 0.05);
      w.p = 0.0;
      return w;
    });
    Run r;
    r.t1 = s->add_tracer(x1);
    r.t2 = s->add_tracer(x2);
    r.s = std::move(s);
    runs.push_back(std::move(r));
  }

  bool crossed = false;
  std::vector<double> mid_gap(alphas.size(), 0.0);
  for (double t = 0.0; t <= t_end + 1e-9; t += 0.1) {
    std::printf("%6.2f", t);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      runs[i].s->advance_to(t);
      const double gap = runs[i].s->tracer_position(runs[i].t2) -
                         runs[i].s->tracer_position(runs[i].t1);
      if (gap <= 0.0) crossed = true;
      if (std::abs(t - 0.3) < 1e-9) mid_gap[i] = gap;
      std::printf("      %13.6f", gap);
    }
    std::printf("\n");
  }

  bench::print_header("Shape checks against the paper's Fig. 3");
  std::printf("  trajectories never cross (gap > 0 throughout) : %s\n",
              crossed ? "FAIL" : "ok");
  bool monotone = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const double g_prev = runs[i - 1].s->tracer_position(runs[i - 1].t2) -
                          runs[i - 1].s->tracer_position(runs[i - 1].t1);
    const double g_cur = runs[i].s->tracer_position(runs[i].t2) -
                         runs[i].s->tracer_position(runs[i].t1);
    if (g_cur > g_prev) monotone = false;
  }
  std::printf("  smaller alpha -> faster convergence (t=%.1f)   : %s\n",
              t_end, monotone ? "ok" : "FAIL");
  std::printf("  alpha -> 0 approaches the colliding (vanishing-viscosity)\n"
              "  solution: final gaps ");
  for (const auto& r : runs)
    std::printf("%.5f ", r.s->tracer_position(r.t2) -
                             r.s->tracer_position(r.t1));
  std::printf("\n");

  // Density stays bounded through the would-be collision.
  double rho_max = 0.0;
  for (double v : runs.back().s->rho()) rho_max = std::max(rho_max, v);
  std::printf("  density bounded through collision (alpha=%g): max rho = "
              "%.1f (finite)\n",
              alphas.back(), rho_max);
  return crossed ? 1 : 0;
}
