/// \file bench_grind.cpp
/// The perf-trajectory harness: measures grind time (ns per cell per step,
/// the paper's Table 3 metric) on the Mach-10 single-jet workload (§6.2) for
/// every precision policy × reconstruction scheme of the IGR solver plus the
/// WENO5+HLLC baseline, and writes the results as BENCH_<name>.json.
///
/// Every PR that touches a hot path re-runs this and checks the JSON in, so
/// perf regressions are one `diff` away.  See PERF.md.
///
/// Usage:
///   bench_grind [--smoke] [--n N] [--warmup W] [--steps S]
///               [--threads T1,T2,...] [--case NAME]... [--label NAME]
///               [--out PATH]
///
/// --smoke shrinks the grid and step counts to a seconds-scale run for CI
/// (ctest label `bench-smoke`); default sizes match the checked-in numbers.
/// Each --case NAME (repeatable; see `run_case --list`) appends IGR grind
/// rows for that registered scenario at every precision, so grind time is
/// tracked per workload *shape* — BC mix, smooth vs shock-dominated —
/// rather than jet-only.  --threads re-runs the IGR matrix at each listed
/// exec-space width (the fused-wavefront multi-core scaling table; 0 =
/// ambient); the baseline rows run once, ambient — the WENO baseline does
/// not go through the exec-space layer.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cases/case.hpp"
#include "common/cli.hpp"
#include "common/half.hpp"
#include "common/precision.hpp"

namespace {

using namespace igr;
using app::SchemeKind;

struct Row {
  std::string workload = "mach10_single_jet";
  std::string scheme;
  std::string precision;
  std::string recon;
  int threads = 0;  ///< Exec-space width the row ran at (0 = ambient).
  double grind_ns = 0.0;
  bool has_phases = false;
  std::array<double, igr::common::PhaseProfile::kNumPhases> phase_ns{};
};

const char* recon_name(fv::ReconScheme r) {
  switch (r) {
    case fv::ReconScheme::kFirst: return "recon1";
    case fv::ReconScheme::kThird: return "recon3";
    case fv::ReconScheme::kFifth: return "recon5";
    case fv::ReconScheme::kWeno5: return "weno5";
  }
  return "?";
}

Row report_row(Row r, const igr::bench::GrindSample& s) {
  r.threads = igr::bench::bench_overrides().exec_threads;
  r.grind_ns = s.grind_ns;
  r.has_phases = s.has_phases;
  r.phase_ns = s.phase_ns;
  std::printf("  %-18s %-20s %-8s %-7s t=%d %10.1f ns/cell/step  "
              "(%.3g cells/s)",
              r.workload.c_str(), r.scheme.c_str(), r.precision.c_str(),
              r.recon.c_str(), r.threads, r.grind_ns, 1.0e9 / r.grind_ns);
  if (r.has_phases) {
    std::printf("  [");
    for (int p = 0; p < igr::common::PhaseProfile::kNumPhases; ++p) {
      std::printf("%s%s %.0f",
                  p ? " " : "",
                  igr::common::PhaseProfile::name(
                      static_cast<igr::common::PhaseProfile::Phase>(p)),
                  r.phase_ns[static_cast<std::size_t>(p)]);
    }
    std::printf("]");
  }
  std::printf("\n");
  std::fflush(stdout);
  return r;
}

template <class Policy>
Row run_one(SchemeKind scheme, fv::ReconScheme recon, int n, int warmup,
            int steps) {
  Row r;
  r.scheme = (scheme == SchemeKind::kIgr) ? "igr" : "baseline_weno_hllc";
  r.precision = std::string(Policy::name);
  r.recon = recon_name(scheme == SchemeKind::kIgr ? recon
                                                  : fv::ReconScheme::kWeno5);
  return report_row(std::move(r),
                    bench::measure_grind<Policy>(scheme, n, warmup, steps,
                                                 recon));
}

template <class Policy>
Row run_case_row(const igr::cases::CaseSpec& spec, int n, int warmup,
                 int steps) {
  Row r;
  r.workload = spec.name;
  r.scheme = "igr";
  r.precision = std::string(Policy::name);
  r.recon = recon_name(fv::ReconScheme::kFifth);
  return report_row(std::move(r),
                    bench::measure_case_grind<Policy>(
                        spec, SchemeKind::kIgr, n, warmup, steps));
}

void write_json(const std::string& path, const std::string& label, int n,
                int warmup, int steps, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_grind: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"name\": \"%s\",\n", label.c_str());
  std::fprintf(f, "  \"workload\": \"mach10_single_jet\",\n");
  std::fprintf(f, "  \"metric\": \"grind_ns_per_cell_step\",\n");
  std::fprintf(f, "  \"half_backend\": \"%s\",\n",
               std::string(common::half_batch::backend_name()).c_str());
  std::fprintf(f, "  \"fused_rhs\": %s,\n",
               bench::bench_overrides().fused_rhs ? "true" : "false");
  std::fprintf(f, "  \"grid\": [%d, %d, %d],\n", n, n, n + n / 2);
  std::fprintf(f, "  \"warmup_steps\": %d,\n", warmup);
  std::fprintf(f, "  \"timed_steps\": %d,\n", steps);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"scheme\": \"%s\", "
                 "\"precision\": \"%s\", "
                 "\"recon\": \"%s\", \"threads\": %d, "
                 "\"grind_ns_per_cell_step\": %.2f, "
                 "\"cells_per_sec\": %.0f",
                 r.workload.c_str(), r.scheme.c_str(), r.precision.c_str(),
                 r.recon.c_str(), r.threads, r.grind_ns, 1.0e9 / r.grind_ns);
    if (r.has_phases) {
      // Per-phase attribution (same unit as the headline figure; the
      // remainder to grind_ns_per_cell_step is untimed orchestration).
      std::fprintf(f, ", \"phase_ns_per_cell_step\": {");
      for (int p = 0; p < igr::common::PhaseProfile::kNumPhases; ++p) {
        std::fprintf(f, "%s\"%s\": %.2f", p ? ", " : "",
                     igr::common::PhaseProfile::name(
                         static_cast<igr::common::PhaseProfile::Phase>(p)),
                     r.phase_ns[static_cast<std::size_t>(p)]);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}%s\n", (i + 1 < rows.size()) ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  namespace ccli = igr::common::cli;
  int n = 32, warmup = 2, steps = 3;
  std::string out = "BENCH_grind.json";
  std::string label = "grind";
  std::vector<std::string> case_names;
  std::vector<int> thread_widths;  ///< Empty: one ambient-width pass.
  bool smoke = false;
  ccli::Args args("bench_grind", argc, argv);
  while (args.next()) {
    if (args.is("--smoke")) {
      smoke = true;
    } else if (args.is("--phased")) {
      bench::bench_overrides().fused_rhs = false;
    } else if (args.is("--block")) {
      bench::bench_overrides().fused_flux_block = args.int_value(1);
    } else if (args.is("--n")) {
      n = args.int_value(1);
    } else if (args.is("--warmup")) {
      warmup = args.int_value(0);
    } else if (args.is("--steps")) {
      steps = args.int_value(1);
    } else if (args.is("--threads")) {
      thread_widths = args.int_list_value(1);
    } else if (args.is("--case")) {
      case_names.emplace_back(args.value());
    } else if (args.is("--out")) {
      out = args.value();
    } else if (args.is("--label")) {
      label = args.value();
    } else {
      args.die(std::string("unknown arg ") + args.flag());
    }
  }
  if (smoke) {
    n = 16;
    warmup = 1;
    steps = 2;
    if (label == "grind") label = "smoke";
  }
  if (n < 8 || steps < 1 || warmup < 0) {
    std::fprintf(stderr,
                 "bench_grind: need --n >= 8 (reconstruction stencil + "
                 "inflow patch), --steps >= 1, --warmup >= 0\n");
    return 2;
  }

  // Fail fast on a bad case name — before minutes of jet matrix are spent.
  std::vector<const igr::cases::CaseSpec*> case_specs;
  for (const auto& name : case_names) {
    const auto* spec = igr::cases::find(name);
    if (!spec) {
      std::fprintf(stderr,
                   "bench_grind: unknown case '%s' (see run_case --list)\n",
                   name.c_str());
      return 2;
    }
    case_specs.push_back(spec);
  }

  std::printf("igrflow bench_grind: n=%d warmup=%d steps=%d half_backend=%s\n",
              n, warmup, steps,
              std::string(common::half_batch::backend_name()).c_str());
  std::vector<Row> rows;
  using common::Bf16x32;
  using common::Fp16x32;
  using common::Fp32;
  using common::Fp64;
  const auto kAll = {fv::ReconScheme::kFirst, fv::ReconScheme::kThird,
                     fv::ReconScheme::kFifth};
  // IGR: every precision × reconstruction order (Table 3's rows, extended
  // with the recon sweep so dispatch-level regressions are visible) — once
  // per requested exec-space width (one ambient pass without --threads).
  const auto igr_rows = [&](int threads) {
    bench::bench_overrides().exec_threads = threads;
    for (auto recon : kAll)
      rows.push_back(run_one<Fp64>(SchemeKind::kIgr, recon, n, warmup,
                                   steps));
    for (auto recon : kAll)
      rows.push_back(run_one<Fp32>(SchemeKind::kIgr, recon, n, warmup,
                                   steps));
    for (auto recon : kAll)
      rows.push_back(
          run_one<Fp16x32>(SchemeKind::kIgr, recon, n, warmup, steps));
    for (auto recon : kAll)
      rows.push_back(
          run_one<Bf16x32>(SchemeKind::kIgr, recon, n, warmup, steps));
    // Per-case grind rows (recon5, all IGR precisions): grind tracked per
    // scenario shape, not jet-only.
    for (const auto* spec : case_specs) {
      rows.push_back(run_case_row<Fp64>(*spec, n, warmup, steps));
      rows.push_back(run_case_row<Fp32>(*spec, n, warmup, steps));
      rows.push_back(run_case_row<Fp16x32>(*spec, n, warmup, steps));
      rows.push_back(run_case_row<Bf16x32>(*spec, n, warmup, steps));
    }
  };
  if (thread_widths.empty()) {
    igr_rows(0);
  } else {
    for (const int t : thread_widths) igr_rows(t);
  }
  // Baseline: WENO5+HLLC at FP64 (the state of the art the paper beats) and
  // FP32 (timing-only; unstable below FP64 per §4.3).  Always ambient: the
  // baseline does not go through the exec-space layer.
  bench::bench_overrides().exec_threads = 0;
  rows.push_back(run_one<Fp64>(SchemeKind::kBaselineWeno,
                               fv::ReconScheme::kWeno5, n, warmup, steps));
  rows.push_back(run_one<Fp32>(SchemeKind::kBaselineWeno,
                               fv::ReconScheme::kWeno5, n, warmup, steps));

  write_json(out, label, n, warmup, steps, rows);
  return 0;
}
