/// \file fig5_precision.cpp
/// Reproduces paper Fig. 5: a three-engine plume configuration run with
/// FP16/32, FP32, and FP64 storage under IGR, plus the FP64 baseline
/// numerics.  The paper's findings to reproduce in shape:
///   - FP32 and FP64 are (visually) indistinguishable;
///   - FP16 differs only through the *earlier onset* of physical
///     instabilities seeded by storage-rounding noise, while remaining a
///     faithful representation of the flow;
///   - the baseline's shock capturing leaves grid-aligned artifacts.

#include <cmath>
#include <cstdio>
#include <vector>

#include "app/jet_config.hpp"
#include "app/simulation.hpp"
#include "bench_util.hpp"

namespace {

using namespace igr;
using app::SchemeKind;
using app::Simulation;

constexpr int kNx = 24, kNy = 24, kNz = 32;
constexpr int kSteps = 24;

template <class Policy>
Simulation<Policy> make_sim(SchemeKind scheme) {
  const auto jet = app::three_engine_row();
  typename Simulation<Policy>::Params params;
  params.grid = mesh::Grid(kNx, kNy, kNz, {0, 1}, {0, 1}, {0, 1.4});
  params.cfg = jet.solver_config();
  params.bc = jet.make_bc();
  params.scheme = scheme;
  Simulation<Policy> sim(params);
  sim.init(jet.initial_condition(0.01));  // smooth seeded noise, as in Fig. 5
  return sim;
}

/// Density field sampled to double for cross-precision comparison.
template <class Policy>
std::vector<double> density(const Simulation<Policy>& sim) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(kNx) * kNy * kNz);
  const auto& q = sim.state();
  for (int k = 0; k < kNz; ++k)
    for (int j = 0; j < kNy; ++j)
      for (int i = 0; i < kNx; ++i)
        out.push_back(static_cast<double>(q[0](i, j, k)));
  return out;
}

double rel_l2(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / den);
}

/// Transverse (x,y) kinetic-energy fraction: a proxy for how far the
/// shear-layer instability has developed (the jet itself is axial).
template <class Policy>
double transverse_ke_fraction(const Simulation<Policy>& sim) {
  const auto& q = sim.state();
  double trans = 0, total = 0;
  for (int k = 0; k < kNz; ++k)
    for (int j = 0; j < kNy; ++j)
      for (int i = 0; i < kNx; ++i) {
        const double r = static_cast<double>(q[0](i, j, k));
        const double mx = static_cast<double>(q[1](i, j, k));
        const double my = static_cast<double>(q[2](i, j, k));
        const double mz = static_cast<double>(q[3](i, j, k));
        trans += (mx * mx + my * my) / r;
        total += (mx * mx + my * my + mz * mz) / r;
      }
  return total > 0 ? trans / total : 0.0;
}

}  // namespace

int main() {
  std::printf("igrflow :: Fig. 5 reproduction (three-engine precision study)\n");

  auto s16 = make_sim<common::Fp16x32>(SchemeKind::kIgr);
  auto s32 = make_sim<common::Fp32>(SchemeKind::kIgr);
  auto s64 = make_sim<common::Fp64>(SchemeKind::kIgr);
  auto sb = make_sim<common::Fp64>(SchemeKind::kBaselineWeno);

  s16.run_steps(kSteps);
  s32.run_steps(kSteps);
  s64.run_steps(kSteps);
  sb.run_steps(kSteps);

  const auto r16 = density(s16);
  const auto r32 = density(s32);
  const auto r64 = density(s64);
  const auto rb = density(sb);

  igr::bench::print_header("Field agreement (relative L2 density difference "
                           "vs IGR FP64)");
  std::printf("  FP32  vs FP64          : %.3e   (indistinguishable)\n",
              rel_l2(r32, r64));
  std::printf("  FP16/32 vs FP64        : %.3e   (visible, physical "
              "differences)\n",
              rel_l2(r16, r64));
  std::printf("  baseline FP64 vs FP64  : %.3e   (different numerics)\n",
              rel_l2(rb, r64));

  igr::bench::print_header("Instability-onset proxy (transverse KE fraction)");
  const double f16 = transverse_ke_fraction(s16);
  const double f32 = transverse_ke_fraction(s32);
  const double f64 = transverse_ke_fraction(s64);
  std::printf("  FP16/32: %.5f | FP32: %.5f | FP64: %.5f\n", f16, f32, f64);
  std::printf(
      "  Paper: FP16 storage seeds hydrodynamic instabilities earlier via\n"
      "  rounding noise; FP32/FP64 agree closely.  Here: |FP32-FP64| = %.2e,"
      "\n  FP16 deviation = %.2e (%.0fx larger).\n",
      std::abs(f32 - f64), std::abs(f16 - f64),
      std::abs(f16 - f64) / std::max(std::abs(f32 - f64), 1e-12));

  igr::bench::print_header("Sanity of all four runs");
  auto report = [](const char* name, auto& sim) {
    const auto d = sim.diagnostics();
    std::printf("  %-18s max Mach %6.2f | min rho %8.2e | KE %8.4f | "
                "transient cells %zu\n",
                name, d.max_mach, d.min_density, d.kinetic_energy,
                d.nonpositive_pressure_cells);
    return d.min_density > 0 && std::isfinite(d.kinetic_energy);
  };
  bool ok = report("IGR FP16/32", s16);
  ok &= report("IGR FP32", s32);
  ok &= report("IGR FP64", s64);
  ok &= report("baseline FP64", sb);

  const bool shape_ok = rel_l2(r32, r64) < 0.1 * rel_l2(r16, r64);
  std::printf("\nShape check: FP32 tracks FP64 at least 10x closer than "
              "FP16 does: %s\n",
              shape_ok ? "ok" : "FAIL");
  return ok && shape_ok ? 0 : 1;
}
