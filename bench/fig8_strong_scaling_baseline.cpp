/// \file fig8_strong_scaling_baseline.cpp
/// Reproduces paper Fig. 8: strong scaling on Frontier in FP32, IGR vs the
/// optimized WENO+HLLC baseline.  The decisive asymmetry: IGR accommodates
/// 10.5B grid points per node while the baseline fits only 421M (its
/// footprint is ~25x larger), so from the same 8-node start the baseline
/// runs out of work per device ~25x sooner — 6% vs 38% efficiency at the
/// full system in the paper.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/memory_footprint.hpp"
#include "mem/memory_model.hpp"
#include "perf/scaling_model.hpp"

int main() {
  using namespace igr;
  std::printf(
      "igrflow :: Fig. 8 reproduction (strong scaling vs baseline, FP32 "
      "Frontier)\n");

  const auto p = perf::frontier();
  const int base_nodes = 8;
  const int base_dev = base_nodes * p.devices_per_node;

  // Per-node capacities from the memory model (paper: 10.5B vs 421M).
  mem::Placement pl;
  const double igr_cap =
      mem::MemoryModel::capacity_cells(p, core::igr_footprint(4),
                                       perf::MemMode::kUnified, pl) *
      p.devices_per_node;
  const double base_cap =
      mem::MemoryModel::capacity_cells(p, core::weno_footprint(4),
                                       perf::MemMode::kInCore, pl) *
      p.devices_per_node;
  bench::print_header("Per-node problem-size capacity (FP32)");
  std::printf("  IGR unified      : %6.2fB cells/node  (paper: 10.5B)\n",
              igr_cap / 1e9);
  std::printf("  baseline in-core : %6.2fB cells/node  (paper: 0.421B)\n",
              base_cap / 1e9);
  std::printf("  capacity ratio   : %6.1fx\n", igr_cap / base_cap);

  perf::ScalingModel igr_m(p, perf::Scheme::kIgr, perf::Precision::kFp32,
                           perf::MemMode::kUnified);
  perf::ScalingModel base_m(p, perf::Scheme::kBaselineWeno,
                            perf::Precision::kFp32, perf::MemMode::kInCore);
  // The paper gives no baseline FP32 grind (unstable per §4.3, but timed for
  // Fig. 8); use FP64/2, the typical bandwidth-bound scaling.
  base_m.set_grind_ns(p.grind(perf::Scheme::kBaselineWeno,
                              perf::Precision::kFp64,
                              perf::MemMode::kInCore) /
                      2.0);

  std::vector<int> device_counts;
  for (int nodes = base_nodes; nodes < p.full_system_nodes; nodes *= 2)
    device_counts.push_back(nodes * p.devices_per_node);
  device_counts.push_back(p.full_system_devices());

  const auto igr_pts = igr_m.strong_scaling(base_nodes * 10.5e9, device_counts);
  const auto base_pts =
      base_m.strong_scaling(base_nodes * 0.421e9, device_counts);

  bench::print_header(
      "Speedup from the 8-node base (each scheme at its own max base size)");
  std::printf("  %8s %10s %14s %14s %10s\n", "nodes", "ideal", "IGR",
              "baseline", "ratio");
  for (std::size_t i = 0; i < igr_pts.size(); ++i) {
    const int nodes = igr_pts[i].devices / p.devices_per_node;
    const double ideal = static_cast<double>(igr_pts[i].devices) / base_dev;
    std::printf("  %8d %10.0f %8.1f (%3.0f%%) %8.1f (%3.0f%%) %9.1fx%s\n",
                nodes, ideal, igr_pts[i].speedup,
                100.0 * igr_pts[i].efficiency, base_pts[i].speedup,
                100.0 * base_pts[i].efficiency,
                igr_pts[i].speedup / base_pts[i].speedup,
                igr_pts[i].devices == p.full_system_devices()
                    ? "  <- full system"
                    : "");
  }

  const double igr_full = igr_pts.back().efficiency;
  const double base_full = base_pts.back().efficiency;
  std::printf(
      "\nShape check vs paper Fig. 8: full-system efficiency IGR %.0f%% "
      "(paper 38%%),\nbaseline %.0f%% (paper 6%%); IGR/baseline advantage "
      "%.1fx.\n",
      100 * igr_full, 100 * base_full, igr_full / base_full);
  return (igr_full > base_full) ? 0 : 1;
}
