#!/usr/bin/env bash
# One-command sanitizer pass over the unit-test suite.  Two modes:
#
#   bench/run_sanitize.sh [build-dir]        ASan+UBSan (default)
#   bench/run_sanitize.sh [build-dir] tsan   ThreadSanitizer
#
# Both configure a dedicated build tree (every test carries the `sanitize`
# ctest label there, see CMakeLists.txt), build it, and run
# `ctest -L sanitize`.  Sibling of run_benches.sh's perf smoke flow — the
# suites together are the CI story: one command for perf, one for
# memory/UB, one for data races.
#
# The TSan mode disables OpenMP: libgomp is not TSan-instrumented and would
# flood the report with false positives, while the rank-parallel machinery
# under test (sim::RankTeam workers, sim::Comm posted-epoch halo pipeline)
# is pure std::thread/std::atomic and is exactly what TSan validates.
#
#   build-dir  where to configure the sanitizer tree (default:
#              ./build-sanitize or ./build-tsan; created if missing)
set -euo pipefail

build="${1:-}"
mode="${2:-asan}"
root="$(cd "$(dirname "$0")/.." && pwd)"

case "$mode" in
  asan) sanitize_flags=(-DIGR_SANITIZE=ON); default_build=build-sanitize ;;
  tsan) sanitize_flags=(-DIGR_TSAN=ON -DIGR_ENABLE_OPENMP=OFF)
        default_build=build-tsan ;;
  *) echo "run_sanitize.sh: mode must be 'asan' or 'tsan' (got '$mode')" >&2
     exit 2 ;;
esac
build="${build:-$default_build}"
case "$build" in /*) ;; *) build="$root/$build" ;; esac

# The reproducibility flags normally live only in the Release flag set; the
# bitwise-equality tests need them in this RelWithDebInfo tree too (on
# FMA-default toolchains, contraction differences between dispatch paths
# would otherwise trip them spuriously).  IGR_REPRO_FLAGS appends them with
# the per-compiler SLP-flag spelling (clang spells it differently).
cmake -B "$build" -S "$root" \
      "${sanitize_flags[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DIGR_REPRO_FLAGS=ON
cmake --build "$build" -j
ctest --test-dir "$build" -L sanitize --output-on-failure
