#!/usr/bin/env bash
# One-command ASan+UBSan pass over the unit-test suite: configures a
# dedicated build tree with -DIGR_SANITIZE=ON (every test carries the
# `sanitize` ctest label there, see CMakeLists.txt), builds it, and runs
# `ctest -L sanitize`.  Sibling of run_benches.sh's perf smoke flow — the
# two together are the CI story: one command for perf, one for memory/UB.
#
# Usage:
#   bench/run_sanitize.sh [build-dir]
#
#   build-dir  where to configure the sanitizer tree (default:
#              ./build-sanitize; created if missing)
set -euo pipefail

build="${1:-build-sanitize}"
root="$(cd "$(dirname "$0")/.." && pwd)"
case "$build" in /*) ;; *) build="$root/$build" ;; esac

# The reproducibility flags normally live only in the Release flag set; the
# bitwise-equality tests need them in this RelWithDebInfo tree too (on
# FMA-default toolchains, contraction differences between dispatch paths
# would otherwise trip them spuriously).
cmake -B "$build" -S "$root" \
      -DIGR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-ffp-contract=off -fno-tree-slp-vectorize"
cmake --build "$build" -j
ctest --test-dir "$build" -L sanitize --output-on-failure
