/// \file table3_grind_time.cpp
/// Reproduces paper Table 3: wall time per grid cell per time step
/// (the "grind time") for the WENO5+HLLC baseline vs IGR, across
/// precisions and memory modes.
///
/// Three sections:
///   1. Measured on this machine (google-benchmark over the single Mach-10
///      jet workload of §6.2): the scheme/precision *ratios* are the
///      architecture-portable content — IGR ~4x faster than the baseline at
///      FP64, FP32 faster still.
///   2. The modeled device table: paper values, plus the unified-memory
///      columns predicted mechanistically by mem::MemoryModel (traffic /
///      link bandwidth) from the in-core values.
///   3. The §5.4 memory-footprint accounting (the 25x claim).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/memory_footprint.hpp"
#include "mem/memory_model.hpp"
#include "perf/platform.hpp"
#include "perf/scaling_model.hpp"

namespace {

using namespace igr;
using app::SchemeKind;
using bench::measure_grind_ns;

constexpr int kN = 24;       // grid edge for benchmark iterations
constexpr int kSteps = 2;    // steps per benchmark iteration

template <class Policy>
void bm_scheme(benchmark::State& state, SchemeKind scheme) {
  auto sim = bench::make_jet_sim<Policy>(scheme, kN);
  sim.run_steps(2);  // warm-up: develop the jet and the Sigma warm start
  const double cells = static_cast<double>(sim.grid().cells());
  for (auto _ : state) {
    sim.run_steps(kSteps);
  }
  state.counters["grind_ns_per_cell_step"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kSteps * cells,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(state.iterations() * kSteps *
                          static_cast<int64_t>(cells));
}

void register_benchmarks() {
  // Fixed iteration counts: each iteration advances the same simulation, so
  // adaptive timing would keep marching the jet in time.
  benchmark::RegisterBenchmark("baseline_weno_hllc/FP64",
                               bm_scheme<common::Fp64>,
                               SchemeKind::kBaselineWeno)
      ->Iterations(3);
  benchmark::RegisterBenchmark("baseline_weno_hllc/FP32",
                               bm_scheme<common::Fp32>,
                               SchemeKind::kBaselineWeno)
      ->Iterations(3);
  benchmark::RegisterBenchmark("igr/FP64", bm_scheme<common::Fp64>,
                               SchemeKind::kIgr)
      ->Iterations(3);
  benchmark::RegisterBenchmark("igr/FP32", bm_scheme<common::Fp32>,
                               SchemeKind::kIgr)
      ->Iterations(3);
  benchmark::RegisterBenchmark("igr/FP16x32", bm_scheme<common::Fp16x32>,
                               SchemeKind::kIgr)
      ->Iterations(3);
}

void print_measured_table() {
  bench::print_header(
      "Table 3 (this machine, CPU): grind time ns/cell/step, Mach-10 jet");
  const int n = 32, warm = 2, steps = 3;
  const double base64 =
      measure_grind_ns<common::Fp64>(SchemeKind::kBaselineWeno, n, warm, steps);
  const double base32 =
      measure_grind_ns<common::Fp32>(SchemeKind::kBaselineWeno, n, warm, steps);
  const double igr64 =
      measure_grind_ns<common::Fp64>(SchemeKind::kIgr, n, warm, steps);
  const double igr32 =
      measure_grind_ns<common::Fp32>(SchemeKind::kIgr, n, warm, steps);
  const double igr16 =
      measure_grind_ns<common::Fp16x32>(SchemeKind::kIgr, n, warm, steps);

  std::printf("%-12s %18s %18s %12s\n", "Precision", "Baseline (WENO)",
              "IGR (this work)", "Speedup");
  std::printf("%-12s %18.1f %18.1f %11.2fx\n", "FP64", base64, igr64,
              base64 / igr64);
  std::printf("%-12s %18.1f %18.1f %11.2fx\n", "FP32 *", base32, igr32,
              base32 / igr32);
  std::printf("%-12s %18s %18.1f %11.2fx (vs base FP64)\n", "FP16/32", "N/A*",
              igr16, base64 / igr16);
  std::printf(
      "\n* The paper marks WENO/HLLC below FP64 numerically unstable "
      "(§4.3);\n  our FP32 baseline row is timing-only.  Software-emulated "
      "FP16 storage\n  adds CPU conversion cost absent on the paper's "
      "native-half devices.\n");
  std::printf(
      "\nPaper Table 3 FP64 speedups: GH200 4.41x, MI250X 5.36x, "
      "MI300A 4.09x.\nMeasured here: %.2fx — IGR wins on pure arithmetic; "
      "the paper's larger factor\nadds the memory-bound GPU regime, where "
      "the baseline also pays bandwidth for\nits stored intermediates "
      "(see EXPERIMENTS.md).\n",
      base64 / igr64);
}

void print_device_table() {
  bench::print_header(
      "Table 3 (modeled devices): paper values + unified columns predicted "
      "by the traffic model");
  std::printf("%-10s %-12s %10s %12s %12s %14s\n", "Device", "Precision",
              "Baseline", "IGR in-core", "IGR unified", "model-predicted");
  for (const auto& p : perf::all_platforms()) {
    for (auto prec : {perf::Precision::kFp64, perf::Precision::kFp32,
                      perf::Precision::kFp16x32}) {
      const double base =
          p.grind(perf::Scheme::kBaselineWeno, prec, perf::MemMode::kInCore);
      const double ic =
          p.grind(perf::Scheme::kIgr, prec, perf::MemMode::kInCore);
      const double un =
          p.grind(perf::Scheme::kIgr, prec, perf::MemMode::kUnified);
      mem::Placement pl;  // host RK register (the 12/17 split)
      const double predicted =
          (ic == perf::kNotApplicable)
              ? un
              : ic + mem::MemoryModel::unified_overhead_ns(
                         p, perf::ScalingModel::bytes_per_real(prec), pl);
      auto cell = [](double v) {
        return v == perf::kNotApplicable ? std::string("    --")
                                         : std::to_string(v).substr(0, 6);
      };
      std::printf("%-10s %-12s %10s %12s %12s %14s\n", p.device.c_str(),
                  perf::precision_name(prec), cell(base).c_str(),
                  cell(ic).c_str(), cell(un).c_str(),
                  cell(predicted).c_str());
    }
  }
  std::printf(
      "\nMechanism check: GH200 unified overhead <5%% (900 GB/s C2C), "
      "MI250X 42-51%%\n(72 GB/s xGMI), MI300A 0%% (single HBM pool) — "
      "matching §7.1.\n");
}

void print_footprint_table() {
  bench::print_header(
      "Memory footprint accounting (paper §5.4: ~25x reduction)");
  const auto base = core::weno_footprint(8);
  const auto igr64 = core::igr_footprint(8);
  const auto igr16 = core::igr_footprint(2);
  std::printf("%s: %.0f values/cell x %zu B\n", base.scheme.c_str(),
              base.reals_per_cell(), base.bytes_per_real);
  for (const auto& it : base.items)
    std::printf("    %-46s %6.0f\n", it.name.c_str(), it.reals_per_cell);
  std::printf("%s: %.0f values/cell\n", igr64.scheme.c_str(),
              igr64.reals_per_cell());
  for (const auto& it : igr64.items)
    std::printf("    %-46s %6.0f\n", it.name.c_str(), it.reals_per_cell);
  std::printf("\nFootprint ratios:\n");
  std::printf("  baseline FP64 vs IGR FP64 (fusion only)     : %5.1fx\n",
              core::footprint_ratio(base, igr64));
  std::printf("  baseline FP64 vs IGR FP16 storage (paper)   : %5.1fx\n",
              core::footprint_ratio(base, igr16));
  std::printf("  device-resident share, host RK register     : %5.3f (12/17)\n",
              core::device_resident_fraction(true, false));
  std::printf("  device-resident share, + IGR temporaries    : %5.3f (10/17)\n",
              core::device_resident_fraction(true, true));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("igrflow :: Table 3 reproduction (grind time)\n");
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_measured_table();
  print_device_table();
  print_footprint_table();
  return 0;
}
